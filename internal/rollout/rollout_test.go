package rollout

import (
	"math/rand"
	"testing"
	"time"

	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/model"
	"fastrl/internal/tokenizer"
	"fastrl/internal/workload"
)

type testEnv struct {
	tk      *tokenizer.Tokenizer
	target  *model.LM
	drafter *draft.Eagle
	gen     *workload.TaskGen
}

func newEnv(t testing.TB) *testEnv {
	t.Helper()
	tk := tokenizer.New()
	cfg := model.DefaultConfig(tk.VocabSize(), gpu.Qwen7B)
	cfg.Buckets = 1 << 10
	var digits []int
	for d := 0; d <= 9; d++ {
		digits = append(digits, tk.Digit(d))
	}
	target := model.New(cfg, &model.GrammarPrior{AnswerID: tk.Answer(), EosID: tk.Eos(), DigitIDs: digits})
	gen := workload.NewTaskGen(tk, 50, 3)

	// Warm the drafter on target rollouts.
	e := draft.NewEagle(draft.EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	rng := rand.New(rand.NewSource(4))
	var examples []*draft.Example
	for _, task := range gen.Sample(60) {
		seq := model.Generate(target, task.Prompt, nil, 1, 50, tk.Eos(), rng)
		examples = append(examples, draft.HarvestExamples(target, model.Context{Tokens: seq, PromptLen: len(task.Prompt)}, true)...)
	}
	for i := 0; i < 3; i++ {
		e.Train(examples, nil, rng)
	}
	return &testEnv{tk: tk, target: target, drafter: e, gen: gen}
}

func (env *testEnv) requests(t testing.TB, n, maxNew int, seed int64) []*Request {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sampler := workload.DefaultLengthSampler(maxNew)
	var reqs []*Request
	for i, task := range env.gen.Sample(n) {
		prior := workload.PriorFor(task, sampler, rng)
		reqs = append(reqs, NewRequest(i, task.Prompt, maxNew, prior, env.tk.Answer(), env.tk.Eos()))
	}
	return reqs
}

func TestVanillaRunCompletes(t *testing.T) {
	env := newEnv(t)
	cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	cfg.SDThreshold = -1 // SD disabled
	eng, err := New(cfg, env.target, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqs := env.requests(t, 8, 120, 1)
	stats := eng.Run(reqs, rand.New(rand.NewSource(2)))

	if stats.SDSteps != 0 {
		t.Fatalf("SD ran while disabled: %d steps", stats.SDSteps)
	}
	if stats.VanillaSteps == 0 {
		t.Fatal("no vanilla steps recorded")
	}
	var total int
	for _, r := range reqs {
		if !r.Done {
			t.Fatalf("request %d not done", r.ID)
		}
		if r.Generated() > r.MaxNew {
			t.Fatalf("request %d overflowed MaxNew: %d > %d", r.ID, r.Generated(), r.MaxNew)
		}
		total += r.Generated()
	}
	if total != stats.ResponseTokens {
		t.Fatalf("token accounting mismatch: %d vs %d", total, stats.ResponseTokens)
	}
	if stats.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if len(stats.CompletionTimes) != len(reqs) {
		t.Fatalf("completion times %d != requests %d", len(stats.CompletionTimes), len(reqs))
	}
}

func TestSDFasterThanVanillaAtSmallBatch(t *testing.T) {
	env := newEnv(t)
	dev := gpu.NewDevice(gpu.H100, 1)

	run := func(threshold int) Stats {
		cfg := DefaultConfig(dev)
		cfg.SDThreshold = threshold
		var dr draft.Drafter
		if threshold >= 0 {
			dr = env.drafter
		}
		eng, err := New(cfg, env.target, dr)
		if err != nil {
			t.Fatal(err)
		}
		reqs := env.requests(t, 2, 300, 7)
		// Pin long responses so decode dominates.
		for _, r := range reqs {
			r.Prior = workload.LengthPrior{TargetLen: 280, Sharpness: 12}
		}
		return eng.Run(reqs, rand.New(rand.NewSource(3)))
	}
	vanilla := run(-1)
	sd := run(0) // always SD
	if sd.SDSteps == 0 {
		t.Fatal("SD never engaged")
	}
	speedup := vanilla.Elapsed.Seconds() / sd.Elapsed.Seconds()
	if speedup < 1.2 {
		t.Fatalf("SD speedup %.2fx at batch 2, want > 1.2x (accept len %.2f)",
			speedup, sd.MeanAcceptLen())
	}
	t.Logf("SD speedup %.2fx, accept len %.2f", speedup, sd.MeanAcceptLen())
}

func TestElasticActivation(t *testing.T) {
	env := newEnv(t)
	cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	cfg.SDThreshold = 4
	eng, err := New(cfg, env.target, env.drafter)
	if err != nil {
		t.Fatal(err)
	}
	reqs := env.requests(t, 12, 100, 5)
	stats := eng.Run(reqs, rand.New(rand.NewSource(6)))

	// SD must only appear in iterations with <= threshold running.
	for _, p := range stats.Profile {
		if p.Mode == ModeSD && p.Running > cfg.SDThreshold {
			t.Fatalf("SD ran at batch %d above threshold %d", p.Running, cfg.SDThreshold)
		}
	}
	if stats.SDSteps == 0 {
		t.Fatal("SD never engaged in the long tail")
	}
	if stats.VanillaSteps == 0 {
		t.Fatal("vanilla phase missing at large batch")
	}
	if stats.SwitchCount == 0 {
		t.Fatal("switch cost not accounted")
	}
}

func TestProfileMonotoneAndShrinking(t *testing.T) {
	env := newEnv(t)
	cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	eng, err := New(cfg, env.target, env.drafter)
	if err != nil {
		t.Fatal(err)
	}
	reqs := env.requests(t, 16, 150, 8)
	stats := eng.Run(reqs, rand.New(rand.NewSource(9)))
	prevEnd := time.Duration(-1)
	prevRunning := 1 << 30
	for i, p := range stats.Profile {
		if p.End <= prevEnd {
			t.Fatalf("profile step %d: time not increasing", i)
		}
		prevEnd = p.End
		if p.Running > prevRunning {
			t.Fatalf("profile step %d: running count grew %d -> %d", i, prevRunning, p.Running)
		}
		prevRunning = p.Running
	}
}

func TestMABReceivesRewards(t *testing.T) {
	env := newEnv(t)
	cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	cfg.SDThreshold = 0
	eng, err := New(cfg, env.target, env.drafter)
	if err != nil {
		t.Fatal(err)
	}
	reqs := env.requests(t, 4, 120, 10)
	eng.Run(reqs, rand.New(rand.NewSource(11)))
	sel := eng.Selector()
	anyReward := false
	for _, a := range sel.Arms() {
		if sel.MedianReward(a) > 0 {
			anyReward = true
		}
	}
	if !anyReward {
		t.Fatal("MAB selector received no rewards")
	}
}

func TestNGramDrafterEngine(t *testing.T) {
	env := newEnv(t)
	cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	cfg.SDThreshold = 0
	g := draft.NewNGram(env.tk.VocabSize(), 1, 3)
	eng, err := New(cfg, env.target, g)
	if err != nil {
		t.Fatal(err)
	}
	reqs := env.requests(t, 4, 100, 12)
	stats := eng.Run(reqs, rand.New(rand.NewSource(13)))
	if stats.SDSteps == 0 {
		t.Fatal("model-free SD never ran")
	}
	// The observer interface must have been fed.
	if g.Size() == 0 {
		t.Fatal("ngram drafter observed nothing")
	}
}

func TestRunDeterminism(t *testing.T) {
	env := newEnv(t)
	// Materialise the request set once: TaskGen sampling advances shared
	// state, so each run gets an independent deep copy.
	proto := env.requests(t, 6, 80, 20)
	run := func() Stats {
		cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
		eng, err := New(cfg, env.target, env.drafter.Clone())
		if err != nil {
			t.Fatal(err)
		}
		reqs := make([]*Request, len(proto))
		for i, r := range proto {
			reqs[i] = NewRequest(r.ID, r.Prompt, r.MaxNew, r.Prior, r.AnswerID, r.EosID)
		}
		return eng.Run(reqs, rand.New(rand.NewSource(21)))
	}
	a, b := run(), run()
	if a.ResponseTokens != b.ResponseTokens || a.Elapsed != b.Elapsed {
		t.Fatalf("same-seed runs diverge: %d/%v vs %d/%v",
			a.ResponseTokens, a.Elapsed, b.ResponseTokens, b.Elapsed)
	}
}

func TestGraphPlanSelection(t *testing.T) {
	env := newEnv(t)
	for _, plan := range []string{"bucketed", "single", "naive", "none"} {
		cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
		cfg.GraphPlan = plan
		eng, err := New(cfg, env.target, env.drafter)
		if err != nil {
			t.Fatalf("plan %q: %v", plan, err)
		}
		if eng.Pool() == nil {
			t.Fatalf("plan %q: nil pool", plan)
		}
	}
	cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	cfg.GraphPlan = "bogus"
	if _, err := New(cfg, env.target, env.drafter); err == nil {
		t.Fatal("expected error for unknown plan")
	}
}

func TestNilDeviceRejected(t *testing.T) {
	env := newEnv(t)
	if _, err := New(Config{}, env.target, nil); err == nil {
		t.Fatal("expected error for nil device")
	}
}

func TestLongTailProfileShape(t *testing.T) {
	// With a long-tail length prior, most of the run's iterations should
	// execute at small batch sizes — the under-utilised zone TLT targets.
	env := newEnv(t)
	cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	cfg.SDThreshold = -1
	eng, err := New(cfg, env.target, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqs := env.requests(t, 24, 400, 30)
	stats := eng.Run(reqs, rand.New(rand.NewSource(31)))

	var smallBatchTime, totalTime time.Duration
	var prev time.Duration
	for _, p := range stats.Profile {
		dt := p.End - prev
		prev = p.End
		totalTime += dt
		if p.Running <= len(reqs)/4 {
			smallBatchTime += dt
		}
	}
	frac := float64(smallBatchTime) / float64(totalTime)
	if frac < 0.2 {
		t.Fatalf("long-tail fraction %.2f too small — workload not heavy-tailed", frac)
	}
	t.Logf("fraction of time at <=25%% batch: %.2f", frac)
}
