package rollout

import (
	"math/rand"
	"testing"
	"time"

	"fastrl/internal/gpu"
	"fastrl/internal/workload"
)

func TestToolProfileEnabled(t *testing.T) {
	if (ToolProfile{}).Enabled() {
		t.Fatal("zero profile should be disabled")
	}
	if !(ToolProfile{Every: 10, Latency: time.Millisecond}).Enabled() {
		t.Fatal("configured profile should be enabled")
	}
	if (ToolProfile{Every: 10}).Enabled() {
		t.Fatal("zero-latency profile should be disabled")
	}
}

func TestToolCallsPauseDecoding(t *testing.T) {
	env := newEnv(t)
	cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	cfg.SDThreshold = -1
	eng, err := New(cfg, env.target, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqs := env.requests(t, 4, 80, 50)
	for _, r := range reqs {
		r.Prior = workload.LengthPrior{TargetLen: 70, Sharpness: 20}
		r.Tool = ToolProfile{Every: 20, Latency: 30 * time.Millisecond, MaxCalls: 2}
	}
	stats := eng.Run(reqs, rand.New(rand.NewSource(51)))
	if stats.ToolCalls == 0 {
		t.Fatal("no tool calls recorded")
	}
	if stats.ToolWaitTime == 0 {
		t.Fatal("no tool wait time accounted")
	}
	for _, r := range reqs {
		if !r.Done {
			t.Fatalf("request %d stuck", r.ID)
		}
		if r.ToolCalls() > 2 {
			t.Fatalf("request %d exceeded MaxCalls: %d", r.ID, r.ToolCalls())
		}
	}
}

func TestToolCallsExtendElapsedTime(t *testing.T) {
	env := newEnv(t)
	run := func(withTools bool) Stats {
		cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
		cfg.SDThreshold = -1
		eng, err := New(cfg, env.target, nil)
		if err != nil {
			t.Fatal(err)
		}
		reqs := env.requests(t, 1, 60, 52)
		reqs[0].Prior = workload.LengthPrior{TargetLen: 55, Sharpness: 20}
		if withTools {
			reqs[0].Tool = ToolProfile{Every: 10, Latency: 50 * time.Millisecond}
		}
		return eng.Run(reqs, rand.New(rand.NewSource(53)))
	}
	with := run(true)
	without := run(false)
	if with.Elapsed <= without.Elapsed {
		t.Fatalf("tool calls should extend elapsed time: %v vs %v", with.Elapsed, without.Elapsed)
	}
	// The extension must be at least the accumulated tool wait of the
	// single request (it is the only one, so waits serialise).
	if with.Elapsed-without.Elapsed < with.ToolWaitTime/2 {
		t.Fatalf("tool wait not reflected in elapsed: delta %v, wait %v",
			with.Elapsed-without.Elapsed, with.ToolWaitTime)
	}
}

func TestToolWaitsShrinkDecodingBatch(t *testing.T) {
	// With staggered tool calls, some iterations must run at a smaller
	// batch than the full request count.
	env := newEnv(t)
	cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	cfg.SDThreshold = -1
	eng, err := New(cfg, env.target, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqs := env.requests(t, 6, 80, 54)
	for i, r := range reqs {
		r.Prior = workload.LengthPrior{TargetLen: 70, Sharpness: 20}
		r.Tool = ToolProfile{Every: 15 + i, Latency: 40 * time.Millisecond}
	}
	stats := eng.Run(reqs, rand.New(rand.NewSource(55)))
	sawSmall := false
	for _, p := range stats.Profile {
		if p.Running < len(reqs) && p.Running > 0 {
			sawSmall = true
		}
	}
	if !sawSmall {
		t.Fatal("tool waits never shrank the decoding batch")
	}
}

func TestKVBudgetQueuesRequests(t *testing.T) {
	env := newEnv(t)
	cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	cfg.SDThreshold = -1
	// Budget fits roughly 2 requests' KV at 100 tokens.
	perTok := env.target.Arch().KVBytesPerToken()
	cfg.KVBudgetBytes = 2.5 * perTok * 100
	eng, err := New(cfg, env.target, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqs := env.requests(t, 8, 100, 56)
	for _, r := range reqs {
		r.Prior = workload.LengthPrior{TargetLen: 95, Sharpness: 20}
	}
	stats := eng.Run(reqs, rand.New(rand.NewSource(57)))
	if stats.QueuedSteps == 0 {
		t.Fatal("KV budget never queued requests")
	}
	// The budget binds progressively as KV grows: a substantial share of
	// iterations must run at a small resident batch even though 8
	// requests exist (fresh queued requests restart at prompt length, so
	// the bound is behavioural, not a fixed cap).
	small := 0
	for _, p := range stats.Profile {
		if p.Running <= 3 {
			small++
		}
	}
	if float64(small) < 0.25*float64(len(stats.Profile)) {
		t.Fatalf("KV budget rarely bound: %d/%d small-batch iterations", small, len(stats.Profile))
	}
	for _, r := range reqs {
		if !r.Done {
			t.Fatalf("request %d starved", r.ID)
		}
	}
}

func TestKVBudgetGuaranteesProgress(t *testing.T) {
	env := newEnv(t)
	cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	cfg.SDThreshold = -1
	cfg.KVBudgetBytes = 1 // absurdly small: still must make progress
	eng, err := New(cfg, env.target, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqs := env.requests(t, 3, 40, 58)
	stats := eng.Run(reqs, rand.New(rand.NewSource(59)))
	if stats.ResponseTokens == 0 {
		t.Fatal("no progress under tiny KV budget")
	}
	for _, r := range reqs {
		if !r.Done {
			t.Fatalf("request %d starved", r.ID)
		}
	}
}

func TestKVBudgetCreatesSDSweetSpot(t *testing.T) {
	// Paper §7: under KV pressure the resident batch is small, so SD
	// accelerates even "uniformly long" workloads with no length tail.
	env := newEnv(t)
	perTok := env.target.Arch().KVBytesPerToken()
	run := func(threshold int) Stats {
		cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
		cfg.SDThreshold = threshold
		cfg.KVBudgetBytes = 3 * perTok * 300
		var eng *Engine
		var err error
		if threshold >= 0 {
			eng, err = New(cfg, env.target, env.drafter)
		} else {
			eng, err = New(cfg, env.target, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		reqs := env.requests(t, 12, 300, 60)
		for _, r := range reqs {
			// Uniformly long: no tail, every response ~280 tokens.
			r.Prior = workload.LengthPrior{TargetLen: 280, Sharpness: 25}
		}
		return eng.Run(reqs, rand.New(rand.NewSource(61)))
	}
	sd := run(32)
	van := run(-1)
	if sd.Elapsed >= van.Elapsed {
		t.Fatalf("SD should win under KV pressure: %v vs %v", sd.Elapsed, van.Elapsed)
	}
	t.Logf("uniformly-long + KV budget: SD %.2fx faster (accept %.2f)",
		van.Elapsed.Seconds()/sd.Elapsed.Seconds(), sd.MeanAcceptLen())
}
