// Package rollout implements the Adaptive Rollout Engine (paper §5): a
// continuous-batching decode loop over simulated GPU time with elastic
// speculative-decoding activation, BEG-MAB strategy selection, and a
// memory-efficient CUDAGraph pool.
//
// Token generation is genuine — every response token is sampled from the
// target model (speculatively or not, with identical distribution) — while
// latency is charged to a virtual clock through the gpu roofline model.
package rollout

import (
	"fmt"
	"math/rand"
	"time"

	"fastrl/internal/cudagraph"
	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/mab"
	"fastrl/internal/model"
	"fastrl/internal/prefixcache"
	"fastrl/internal/specdec"
	"fastrl/internal/vclock"
	"fastrl/internal/workload"
)

// Mode distinguishes vanilla decoding from speculative decoding.
type Mode int

const (
	// ModeVanilla is ordinary one-token-per-step decoding.
	ModeVanilla Mode = iota
	// ModeSD is speculative decoding.
	ModeSD
)

func (m Mode) String() string {
	if m == ModeSD {
		return "sd"
	}
	return "vanilla"
}

// Request is one in-flight generation.
type Request struct {
	ID     int
	Prompt []int
	// Tokens is prompt + generated (grows during decoding).
	Tokens []int
	MaxNew int
	// Prior is the length prior driving the dynamic EOS/answer bias.
	Prior workload.LengthPrior
	// AnswerID and EosID are biased by the prior (negative disables).
	AnswerID int
	EosID    int

	Done    bool
	EosSeen bool
	// AcceptLens records per-round accepted token counts while in SD mode.
	AcceptLens []int

	// Tool configures multi-turn tool-calling behaviour (paper §7);
	// zero value disables it.
	Tool ToolProfile
	tool toolState
}

// NewRequest builds a request from a prompt.
func NewRequest(id int, prompt []int, maxNew int, prior workload.LengthPrior, answerID, eosID int) *Request {
	return &Request{
		ID:       id,
		Prompt:   prompt,
		Tokens:   append([]int(nil), prompt...),
		MaxNew:   maxNew,
		Prior:    prior,
		AnswerID: answerID,
		EosID:    eosID,
	}
}

// Generated returns the number of generated (response) tokens.
func (r *Request) Generated() int { return len(r.Tokens) - len(r.Prompt) }

// Response returns the generated suffix.
func (r *Request) Response() []int { return r.Tokens[len(r.Prompt):] }

// biasInto writes the dynamic logit bias for the request's current length
// into dst (an engine-owned map reused across requests) and returns it,
// or nil when no bias applies.
func (r *Request) biasInto(dst map[int]float32) map[int]float32 {
	b := r.Prior.Bias(r.Generated())
	if b == 0 {
		return nil
	}
	clear(dst)
	if r.EosID >= 0 {
		dst[r.EosID] = b
	}
	if r.AnswerID >= 0 {
		dst[r.AnswerID] = b
	}
	if len(dst) == 0 {
		return nil
	}
	return dst
}

// finish marks completion conditions after new tokens landed.
func (r *Request) finish() {
	if r.EosSeen || r.Generated() >= r.MaxNew {
		r.Done = true
	}
}

// Config parameterises the engine.
type Config struct {
	// Device executes all passes (a TP group acting as one device).
	Device *gpu.Device
	// Temp is the sampling temperature.
	Temp float64
	// SDThreshold is the elastic activation bound: SD engages only when
	// the number of running requests drops to or below it (paper default
	// 32). Zero means SD is always on; negative disables SD entirely.
	SDThreshold int
	// Strategies is the SD strategy ladder (grouped by the MAB selector).
	Strategies []specdec.Params
	// MAB configures the BEG-MAB tuner.
	MAB mab.Config
	// GraphPlan selects the CUDAGraph capture plan: "bucketed" (default),
	// "single", "naive", or "none".
	GraphPlan string
	// HostOverhead is the fixed CPU-side cost per engine iteration
	// (scheduling, sampling, detokenisation).
	HostOverhead time.Duration
	// SDHostOverhead is the additional CPU cost per SD iteration (tree
	// construction, acceptance bookkeeping).
	SDHostOverhead time.Duration
	// SwitchCost is the one-off re-prefill cost when SD activates for a
	// running batch (paper: ~3s at datacenter scale).
	SwitchCost time.Duration
	// KVBudgetBytes caps resident KV-cache bytes (paper §7, uniformly-long
	// responses): when the active batch's KV exceeds the budget, excess
	// requests queue instead of decoding, shrinking the running batch.
	// Zero disables the cap.
	KVBudgetBytes float64
	// StopAtRemaining truncates the rollout once this few requests remain
	// (the premature-termination strategy of partial-rollout systems the
	// paper contrasts with: fast, but the truncated responses degrade
	// training quality). Zero disables early stopping.
	StopAtRemaining int
	// Cache, when non-nil, is a shared radix prefix cache: prefill skips
	// positions covered by a cached prefix (their target state is already
	// resident), matched nodes stay retained while their requests decode,
	// and completed sequences are inserted back with the prompt-boundary
	// hidden state so later requests — and warm-started drafters — reuse
	// them. Serving replicas on one shard share a single cache.
	Cache *prefixcache.Cache
}

// DefaultConfig returns the paper's engine settings for a device.
func DefaultConfig(dev *gpu.Device) Config {
	return Config{
		Device:         dev,
		Temp:           0.9,
		SDThreshold:    32,
		Strategies:     mab.DefaultStrategies(),
		MAB:            mab.DefaultConfig(),
		GraphPlan:      "bucketed",
		HostOverhead:   250 * time.Microsecond,
		SDHostOverhead: 1200 * time.Microsecond,
		SwitchCost:     4 * time.Millisecond,
	}
}

// StepProfile is one engine iteration's record (Fig. 14 data).
type StepProfile struct {
	// End is the virtual time at iteration end.
	End time.Duration
	// Running is the number of requests decoding in this iteration.
	Running int
	Mode    Mode
	// Strategy is the SD strategy used (zero for vanilla).
	Strategy specdec.Params
	// TokensOut is the number of response tokens produced this iteration.
	TokensOut int
}

// Stats summarises one Run.
type Stats struct {
	PromptTokens    int
	ResponseTokens  int
	Elapsed         time.Duration
	Profile         []StepProfile
	SDSteps         int
	VanillaSteps    int
	AcceptLenSum    int
	AcceptRounds    int
	GraphMemBytes   float64
	SwitchCount     int
	DraftedNodes    int
	VerifiedTokens  int
	CompletionTimes []time.Duration
	// ToolWaitTime is total virtual time requests spent in GPU-free tool
	// calls; ToolCalls counts them.
	ToolWaitTime time.Duration
	ToolCalls    int
	// QueuedSteps counts iterations where the KV budget forced requests
	// to queue.
	QueuedSteps int
	// TruncatedRequests counts requests cut off by StopAtRemaining.
	TruncatedRequests int
	// PrefillSavedTokens counts prompt positions whose prefill was skipped
	// because a cached prefix already covered them; PrefillCacheHits counts
	// requests that matched the cache at all. Both are 0 without a Cache.
	PrefillSavedTokens int
	PrefillCacheHits   int
}

// MeanAcceptLen returns the paper's accept-length metric
// (accepted/rounds + 1), 0 when SD never ran.
func (s Stats) MeanAcceptLen() float64 {
	if s.AcceptRounds == 0 {
		return 0
	}
	return float64(s.AcceptLenSum)/float64(s.AcceptRounds) + 1
}

// Throughput returns response tokens per virtual second.
func (s Stats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.ResponseTokens) / s.Elapsed.Seconds()
}

// Engine drives a batch of requests to completion.
type Engine struct {
	cfg      Config
	target   *model.LM
	drafter  draft.Drafter
	selector *mab.Selector
	pool     *cudagraph.Pool
	// spec is the engine-owned speculation engine: its scratch (draft and
	// verification buffers, node arena) is reused across every request and
	// round so the decode hot path allocates nothing in steady state. Bias
	// and EosID are repointed per request before each step.
	spec specdec.Engine
	// biasBuf is the reusable dynamic-bias map handed to spec per request.
	biasBuf map[int]float32
	// frontierAgg and acceptLens are per-iteration aggregation buffers
	// reused across sdStep calls.
	frontierAgg []int
	acceptLens  []int
	// retained holds prefix-cache nodes pinned for the duration of a run
	// (released before the run returns); hidCached[i] marks requests whose
	// full prompt matched a node that already carries a hidden state, so
	// insert-back can skip recomputing it. cacheHid/cacheScratch are
	// reused buffers for the prompt-boundary hidden states it does
	// compute.
	retained     []*prefixcache.Node
	hidCached    []bool
	cacheHid     model.HiddenState
	cacheScratch *model.Scratch
	// Clock may be shared across engines (one worker per engine); defaults
	// to a fresh clock.
	Clock    *vclock.Clock
	Timeline *vclock.Timeline
}

// New builds an engine. drafter may be nil (vanilla decoding only).
func New(cfg Config, target *model.LM, drafter draft.Drafter) (*Engine, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("rollout: nil device")
	}
	e := &Engine{cfg: cfg, target: target, drafter: drafter, Clock: &vclock.Clock{}, Timeline: &vclock.Timeline{}}
	e.spec = specdec.Engine{Target: target, Temp: cfg.Temp}
	e.biasBuf = make(map[int]float32, 2)
	if drafter != nil && cfg.SDThreshold >= 0 {
		sel, err := mab.New(cfg.Strategies, cfg.MAB)
		if err != nil {
			return nil, err
		}
		e.selector = sel
		draftArch := drafter.Arch()
		if draftArch.Layers == 0 {
			draftArch = gpu.DraftArch(target.Arch())
		}
		var plan cudagraph.Plan
		switch cfg.GraphPlan {
		case "", "bucketed":
			plan = cudagraph.BucketedPlan(target.Arch(), draftArch, cfg.Device.TP,
				cfg.Strategies, cfg.MAB.Thresholds, cudagraph.DefaultBuckets)
		case "single":
			plan = cudagraph.SinglePlan(target.Arch(), draftArch, cfg.Device.TP,
				cfg.Strategies[0], cudagraph.DefaultBuckets)
		case "naive":
			plan = cudagraph.NaiveMultiPlan(target.Arch(), draftArch, cfg.Device.TP,
				cfg.Strategies, cudagraph.DefaultBuckets)
		case "none":
			plan = cudagraph.Plan{Name: "none"}
		default:
			return nil, fmt.Errorf("rollout: unknown graph plan %q", cfg.GraphPlan)
		}
		e.pool = cudagraph.NewPool(plan)
	}
	return e, nil
}

// Selector exposes the MAB tuner (nil when SD disabled).
func (e *Engine) Selector() *mab.Selector { return e.selector }

// Pool exposes the CUDAGraph pool (nil when SD disabled).
func (e *Engine) Pool() *cudagraph.Pool { return e.pool }

// SetDrafter swaps the draft model (adaptive drafter weight refresh).
func (e *Engine) SetDrafter(d draft.Drafter) { e.drafter = d }

// Run decodes all requests to completion, returning aggregate statistics.
func (e *Engine) Run(reqs []*Request, rng *rand.Rand) Stats {
	return e.run(reqs, rng, 0)
}

// RunIterations executes at most maxIters engine iterations (0 = until all
// requests complete). Steady-state throughput measurements at a fixed
// batch size use it with requests that cannot finish within the bound.
func (e *Engine) RunIterations(reqs []*Request, rng *rand.Rand, maxIters int) Stats {
	return e.run(reqs, rng, maxIters)
}

func (e *Engine) run(reqs []*Request, rng *rand.Rand, maxIters int) Stats {
	var stats Stats
	if e.pool != nil {
		stats.GraphMemBytes = e.pool.MemBytes()
	}
	start := e.Clock.Now()

	// Prefill all prompts in one pass. With a prefix cache, positions
	// covered by a cached prefix are skipped (their target state is
	// already resident); the matched nodes stay retained until the run
	// completes so eviction cannot reclaim state we are decoding on.
	var promptTokens int
	for _, r := range reqs {
		promptTokens += len(r.Prompt)
	}
	stats.PromptTokens = promptTokens
	prefillTokens := promptTokens
	if e.cfg.Cache != nil {
		e.hidCached = e.hidCached[:0]
		for _, r := range reqs {
			n, matched := e.cfg.Cache.Lookup(r.Prompt)
			e.hidCached = append(e.hidCached,
				n != nil && matched == len(r.Prompt) && n.Hidden() != nil)
			if n == nil {
				continue
			}
			e.retained = append(e.retained, n)
			prefillTokens -= matched
			stats.PrefillSavedTokens += matched
			stats.PrefillCacheHits++
		}
	}
	if promptTokens > 0 {
		// KVTokens stays at the full prompt length: the cached prefix
		// contributes resident KV; only its recompute is saved.
		cost := e.cfg.Device.Forward(e.target.Arch(), gpu.ForwardOpts{
			Tokens: prefillTokens, KVTokens: promptTokens,
		}).Total() + e.cfg.HostOverhead
		t0 := e.Clock.Now()
		e.Clock.Advance(cost)
		e.Timeline.Record("prefill", t0, e.Clock.Now())
	}

	sdActive := false
	for iter := 0; ; iter++ {
		if maxIters > 0 && iter >= maxIters {
			break
		}
		active := activeRequests(reqs)
		if len(active) == 0 {
			break
		}
		// Premature termination: the long tail is cut instead of decoded.
		if e.cfg.StopAtRemaining > 0 && len(active) <= e.cfg.StopAtRemaining && iter > 0 {
			for _, r := range active {
				r.Done = true
				stats.TruncatedRequests++
				stats.CompletionTimes = append(stats.CompletionTimes, e.Clock.Now()-start)
			}
			break
		}
		// Multi-turn: requests inside a tool call do not decode. If every
		// active request is waiting, jump the clock to the earliest resume.
		if decoding, waiting := partitionToolWaits(active, e.Clock.Now()); len(waiting) > 0 {
			if len(decoding) == 0 {
				earliest := waiting[0].waitingUntil()
				for _, r := range waiting[1:] {
					if t := r.waitingUntil(); t < earliest {
						earliest = t
					}
				}
				e.Clock.AdvanceTo(earliest)
				continue
			}
			active = decoding
		}
		// Uniformly-long regime: the KV budget bounds the resident batch.
		if e.cfg.KVBudgetBytes > 0 {
			if resident := e.kvResidentLimit(active); resident < len(active) {
				active = active[:resident]
				stats.QueuedSteps++
			}
		}
		useSD := e.selector != nil && (e.cfg.SDThreshold == 0 || len(active) <= e.cfg.SDThreshold)
		if useSD && !sdActive && stats.VanillaSteps > 0 {
			// Activating SD mid-run re-prefills the running batch to seed
			// drafter state (paper §6.4: completes within seconds). Runs
			// that start in SD need no switch.
			stats.SwitchCount++
			t0 := e.Clock.Now()
			e.Clock.Advance(e.cfg.SwitchCost)
			e.Timeline.Record("sd-switch", t0, e.Clock.Now())
		}
		sdActive = useSD

		var prof StepProfile
		if useSD {
			prof = e.sdStep(active, rng, &stats)
			stats.SDSteps++
		} else {
			prof = e.vanillaStep(active, rng, &stats)
			stats.VanillaSteps++
		}
		for _, r := range active {
			if r.maybeStartToolCall(e.Clock.Now()) {
				stats.ToolCalls++
				stats.ToolWaitTime += r.Tool.Latency
			}
		}
		for _, r := range active {
			if r.Done {
				stats.CompletionTimes = append(stats.CompletionTimes, e.Clock.Now()-start)
			}
		}
		stats.Profile = append(stats.Profile, prof)
	}
	if e.cfg.Cache != nil {
		e.cacheInsertBack(reqs)
	}
	stats.Elapsed = e.Clock.Now() - start
	return stats
}

// cacheInsertBack writes completed sequences into the prefix cache (with
// the prompt-boundary hidden state, so a later request sharing the prompt
// can resume from it) and releases the nodes retained at prefill time.
// Unfinished requests (RunIterations bounds) are not inserted; their
// retained prefixes are still released — the next run re-pins them.
func (e *Engine) cacheInsertBack(reqs []*Request) {
	if e.cacheScratch == nil {
		e.cacheScratch = model.NewScratch()
	}
	for i, r := range reqs {
		if !r.Done || len(r.Prompt) == 0 {
			continue
		}
		// The hidden sketch is a pure function of the (frozen-at-serving)
		// target and the prompt, so when the full prompt matched a node
		// that already carries one, recomputing it would reproduce the
		// resident value — skip the pass and only harvest continuations.
		hid := (*model.HiddenState)(nil)
		if i >= len(e.hidCached) || !e.hidCached[i] {
			model.FusedHiddenInto(e.target,
				model.Context{Tokens: r.Prompt, PromptLen: len(r.Prompt)},
				1, &e.cacheHid, e.cacheScratch)
			hid = &e.cacheHid
		}
		e.cfg.Cache.Insert(r.Tokens, len(r.Prompt), hid)
	}
	for i, n := range e.retained {
		n.Release()
		e.retained[i] = nil
	}
	e.retained = e.retained[:0]
}

// partitionToolWaits splits active requests into decoding and tool-waiting
// sets at the given time.
func partitionToolWaits(active []*Request, now time.Duration) (decoding, waiting []*Request) {
	for _, r := range active {
		if r.waitingUntil() > now {
			waiting = append(waiting, r)
		} else {
			decoding = append(decoding, r)
		}
	}
	return decoding, waiting
}

// kvResidentLimit returns how many of the active requests fit the KV
// budget (at least one, so progress is guaranteed).
func (e *Engine) kvResidentLimit(active []*Request) int {
	perTok := e.target.Arch().KVBytesPerToken() / float64(e.cfg.Device.TP)
	var used float64
	for i, r := range active {
		used += perTok * float64(len(r.Tokens))
		if used > e.cfg.KVBudgetBytes && i > 0 {
			return i
		}
	}
	return len(active)
}

func activeRequests(reqs []*Request) []*Request {
	var out []*Request
	for _, r := range reqs {
		if !r.Done {
			out = append(out, r)
		}
	}
	return out
}

func (e *Engine) kvTokens(active []*Request) int {
	var kv int
	for _, r := range active {
		kv += len(r.Tokens)
	}
	return kv
}

// vanillaStep decodes one token for every active request.
func (e *Engine) vanillaStep(active []*Request, rng *rand.Rand, stats *Stats) StepProfile {
	for _, r := range active {
		e.spec.Bias = r.biasInto(e.biasBuf)
		e.spec.EosID = r.EosID
		tok, eos := e.spec.VanillaStep(r.Tokens, len(r.Prompt), rng)
		r.Tokens = append(r.Tokens, tok)
		r.EosSeen = r.EosSeen || eos
		if obs, ok := e.drafter.(draft.Observer); ok && e.drafter != nil {
			obs.Observe(r.Tokens, len(r.Prompt))
		}
		r.finish()
	}
	stats.ResponseTokens += len(active)

	// Vanilla decode replays the engine's standard decode graphs.
	cost := e.cfg.Device.Forward(e.target.Arch(), gpu.ForwardOpts{
		Tokens: len(active), KVTokens: e.kvTokens(active), CUDAGraph: true,
	}).Total() + e.cfg.HostOverhead
	t0 := e.Clock.Now()
	e.Clock.Advance(cost)
	e.Timeline.Record("decode", t0, e.Clock.Now())
	return StepProfile{End: e.Clock.Now(), Running: len(active), Mode: ModeVanilla, TokensOut: len(active)}
}

// sdStep performs one speculative round for every active request.
func (e *Engine) sdStep(active []*Request, rng *rand.Rand, stats *Stats) StepProfile {
	strategy := e.selector.Select(len(active))
	if cap(e.frontierAgg) < strategy.DraftDepth {
		e.frontierAgg = make([]int, strategy.DraftDepth)
	}
	frontierPerDepth := e.frontierAgg[:strategy.DraftDepth]
	for i := range frontierPerDepth {
		frontierPerDepth[i] = 0
	}
	acceptLens := e.acceptLens[:0]
	var (
		verified  int
		tokensOut int
	)
	for _, r := range active {
		e.spec.Bias = r.biasInto(e.biasBuf)
		e.spec.EosID = r.EosID
		res := e.spec.Step(e.drafter, r.Tokens, len(r.Prompt), strategy, rng)
		// Clip overshoot past MaxNew (the engine cap).
		tokens := res.Tokens
		if over := r.Generated() + len(tokens) - r.MaxNew; over > 0 {
			tokens = tokens[:len(tokens)-over]
			res.Eos = false
		}
		r.Tokens = append(r.Tokens, tokens...)
		r.EosSeen = r.EosSeen || res.Eos
		r.AcceptLens = append(r.AcceptLens, res.AcceptLen)
		acceptLens = append(acceptLens, res.AcceptLen)
		tokensOut += len(tokens)
		for d, w := range res.FrontierPerDepth {
			if d < len(frontierPerDepth) {
				frontierPerDepth[d] += w
			}
		}
		verified += res.VerifiedTokens
		stats.DraftedNodes += res.DraftedNodes
		if obs, ok := e.drafter.(draft.Observer); ok {
			obs.Observe(r.Tokens, len(r.Prompt))
		}
		r.finish()
	}
	stats.ResponseTokens += tokensOut
	stats.VerifiedTokens += verified
	stats.AcceptRounds += len(active)
	for _, a := range acceptLens {
		stats.AcceptLenSum += a
	}

	kv := e.kvTokens(active)
	var cost time.Duration
	sdHost := e.cfg.SDHostOverhead

	// Drafting: one sequential pass per depth over the batch frontier.
	draftArch := e.drafter.Arch()
	if draftArch.Layers == 0 {
		// Model-free retrieval drafting skips the draft-model forward and
		// most of the tree bookkeeping (Lookahead-style): half the host
		// cost, no GPU drafting cost.
		sdHost /= 2
	}
	if draftArch.Layers > 0 {
		_, graphOK := e.pool.Lookup(cudagraph.KindDraft, len(active), strategy.TopK)
		for _, w := range frontierPerDepth {
			if w == 0 {
				continue
			}
			cost += e.cfg.Device.Forward(draftArch, gpu.ForwardOpts{
				Tokens: w, KVTokens: kv, CUDAGraph: graphOK,
			}).Total()
		}
	}

	// Verification: one target pass over all selected tree nodes.
	_, graphOK := e.pool.Lookup(cudagraph.KindTarget, len(active), strategy.TokensToVerify)
	cost += e.cfg.Device.Forward(e.target.Arch(), gpu.ForwardOpts{
		Tokens: verified, KVTokens: kv, CUDAGraph: graphOK,
	}).Total()
	cost += e.cfg.HostOverhead + sdHost

	t0 := e.Clock.Now()
	e.Clock.Advance(cost)
	e.Timeline.Record("sd", t0, e.Clock.Now())
	e.selector.Record(strategy, cost, acceptLens, len(active)) // Record only sums; reuse is safe
	e.acceptLens = acceptLens[:0]
	return StepProfile{End: e.Clock.Now(), Running: len(active), Mode: ModeSD, Strategy: strategy, TokensOut: tokensOut}
}
