// Package rollout implements the Adaptive Rollout Engine (paper §5) as a
// run-to-completion driver over the iteration-level scheduler in
// internal/sched: a closed batch of requests is admitted up front and
// stepped until every request completes (or an iteration/truncation bound
// fires). Elastic speculative-decoding activation, BEG-MAB strategy
// selection, the memory-efficient CUDAGraph pool, tool-wait partitioning,
// the KV-residency bound and prefix-cache prefill skipping all live in
// the scheduler — the same lifecycle implementation the serving layer
// step-loops drive incrementally, so trainer and server cannot drift.
//
// Token generation is genuine — every response token is sampled from the
// target model (speculatively or not, with identical distribution) — while
// latency is charged to a virtual clock through the gpu roofline model.
// Token streams are pinned bit-identical to the pre-scheduler engine
// under fixed seeds (see TestLifecycleGolden).
package rollout

import (
	"math/rand"
	"time"

	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/model"
	"fastrl/internal/sched"
	"fastrl/internal/workload"
)

// Re-exported scheduler types: the request lifecycle lives in
// internal/sched, shared with the serving layer; existing rollout-based
// callers keep compiling against these names.
type (
	// Request is one in-flight generation.
	Request = sched.Request
	// Config parameterises the engine (scheduler).
	Config = sched.Config
	// Stats summarises one Run.
	Stats = sched.Stats
	// Mode distinguishes vanilla decoding from speculative decoding.
	Mode = sched.Mode
	// StepProfile is one engine iteration's record (Fig. 14 data).
	StepProfile = sched.StepProfile
	// ToolProfile models multi-turn tool-calling rollouts (paper §7).
	ToolProfile = sched.ToolProfile
)

const (
	// ModeVanilla is ordinary one-token-per-step decoding.
	ModeVanilla = sched.ModeVanilla
	// ModeSD is speculative decoding.
	ModeSD = sched.ModeSD
)

// NewRequest builds a request from a prompt.
func NewRequest(id int, prompt []int, maxNew int, prior workload.LengthPrior, answerID, eosID int) *Request {
	return sched.NewRequest(id, prompt, maxNew, prior, answerID, eosID)
}

// DefaultConfig returns the paper's engine settings for a device.
func DefaultConfig(dev *gpu.Device) Config {
	return sched.DefaultConfig(dev)
}

// Engine drives a closed batch of requests to completion on the shared
// iteration-level scheduler.
type Engine struct {
	*sched.Batch
	cfg Config
}

// New builds an engine. drafter may be nil (vanilla decoding only).
func New(cfg Config, target *model.LM, drafter draft.Drafter) (*Engine, error) {
	b, err := sched.New(cfg, target, drafter)
	if err != nil {
		return nil, err
	}
	return &Engine{Batch: b, cfg: cfg}, nil
}

// Run decodes all requests to completion, returning aggregate statistics.
func (e *Engine) Run(reqs []*Request, rng *rand.Rand) Stats {
	return e.run(reqs, rng, 0)
}

// RunIterations executes at most maxIters engine iterations (0 = until all
// requests complete). Steady-state throughput measurements at a fixed
// batch size use it with requests that cannot finish within the bound.
func (e *Engine) RunIterations(reqs []*Request, rng *rand.Rand, maxIters int) Stats {
	return e.run(reqs, rng, maxIters)
}

// run is the run-to-completion loop: every request is admitted before the
// first step (one batched prefill), then the batch steps until empty, the
// iteration bound fires, or the premature-termination policy truncates
// the tail. The scheduler decodes requests in admission order with the
// shared rng, reproducing the pre-refactor engine's draw order exactly.
func (e *Engine) run(reqs []*Request, rng *rand.Rand, maxIters int) Stats {
	b := e.Batch
	b.Reset()
	b.ResetStats()
	start := b.Clock.Now()
	for _, r := range reqs {
		b.Admit(r)
	}
	for iter := 0; ; iter++ {
		if maxIters > 0 && iter >= maxIters {
			break
		}
		if b.ActiveCount() == 0 {
			break
		}
		// Premature termination: the long tail is cut instead of decoded.
		if e.cfg.StopAtRemaining > 0 && b.ActiveCount() <= e.cfg.StopAtRemaining && iter > 0 {
			b.TruncateRemaining()
			break
		}
		b.Step(rng)
	}
	stats := b.Stats()
	stats.Elapsed = b.Clock.Now() - start
	// Completion times are recorded against the shared (possibly reused)
	// clock; rebase a copy to this run — the snapshot's slice aliases
	// scheduler storage, which must keep its absolute-time contract.
	rebased := make([]time.Duration, len(stats.CompletionTimes))
	for i, ct := range stats.CompletionTimes {
		rebased[i] = ct - start
	}
	stats.CompletionTimes = rebased
	// Drop any requests an iteration bound left unfinished (their retained
	// cache nodes are released; a later Run re-admits and re-pins them)
	// and clear the retirement buffer for the next run.
	b.Retire()
	b.Reset()
	return stats
}
