package rollout

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fastrl/internal/gpu"
	"fastrl/internal/workload"
)

var updateGolden = flag.Bool("update", false, "regenerate golden lifecycle token streams")

// goldenRun is one pinned scenario's output: the full token stream of
// every request plus the coarse stats that must survive refactors.
type goldenRun struct {
	Name           string  `json:"name"`
	Tokens         [][]int `json:"tokens"`
	ResponseTokens int     `json:"response_tokens"`
	SDSteps        int     `json:"sd_steps"`
	VanillaSteps   int     `json:"vanilla_steps"`
	ElapsedNs      int64   `json:"elapsed_ns"`
}

// goldenScenarios drives the engine through the lifecycle variants the
// scheduler refactor must preserve: pure vanilla, always-SD, elastic
// activation with a mid-run switch, and tool waits + KV budget pressure.
// Everything is seed-deterministic, so the recorded streams pin the
// pre-refactor request lifecycle bit-for-bit.
func goldenScenarios(t *testing.T, env *testEnv) []goldenRun {
	t.Helper()
	type scenario struct {
		name      string
		threshold int
		useEagle  bool
		nReqs     int
		maxNew    int
		reqSeed   int64
		runSeed   int64
		mutate    func(reqs []*Request, cfg *Config)
	}
	scenarios := []scenario{
		{name: "vanilla", threshold: -1, nReqs: 6, maxNew: 60, reqSeed: 101, runSeed: 201},
		{name: "sd-always", threshold: 0, useEagle: true, nReqs: 5, maxNew: 70, reqSeed: 102, runSeed: 202},
		{name: "elastic-switch", threshold: 4, useEagle: true, nReqs: 10, maxNew: 80, reqSeed: 103, runSeed: 203},
		{name: "tools-kv", threshold: -1, nReqs: 5, maxNew: 70, reqSeed: 104, runSeed: 204,
			mutate: func(reqs []*Request, cfg *Config) {
				// Tight enough that the resident batch shrinks mid-run.
				cfg.KVBudgetBytes = 3 * env.target.Arch().KVBytesPerToken() * 100
				for i, r := range reqs {
					r.Prior = workload.LengthPrior{TargetLen: 60, Sharpness: 20}
					r.Tool = ToolProfile{Every: 18 + i, Latency: 25 * time.Millisecond, MaxCalls: 2}
				}
			}},
		{name: "truncated-tail", threshold: 0, useEagle: true, nReqs: 6, maxNew: 90, reqSeed: 105, runSeed: 205,
			mutate: func(reqs []*Request, cfg *Config) {
				cfg.StopAtRemaining = 2
			}},
	}

	var out []goldenRun
	for _, sc := range scenarios {
		cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
		cfg.SDThreshold = sc.threshold
		reqs := env.requests(t, sc.nReqs, sc.maxNew, sc.reqSeed)
		if sc.mutate != nil {
			sc.mutate(reqs, &cfg)
		}
		var eng *Engine
		var err error
		if sc.useEagle {
			eng, err = New(cfg, env.target, env.drafter.Clone())
		} else {
			eng, err = New(cfg, env.target, nil)
		}
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		stats := eng.Run(reqs, rand.New(rand.NewSource(sc.runSeed)))
		g := goldenRun{
			Name:           sc.name,
			ResponseTokens: stats.ResponseTokens,
			SDSteps:        stats.SDSteps,
			VanillaSteps:   stats.VanillaSteps,
			ElapsedNs:      stats.Elapsed.Nanoseconds(),
		}
		for _, r := range reqs {
			g.Tokens = append(g.Tokens, append([]int(nil), r.Tokens...))
		}
		out = append(out, g)
	}
	return out
}

// TestLifecycleGolden pins the request lifecycle bit-identical to the
// pre-refactor rollout engine: token streams (and the virtual-time and
// mode accounting) recorded before the iteration-level scheduler refactor
// must be reproduced exactly by the rebased engine under the same seeds.
// Regenerate with `go test ./internal/rollout -run TestLifecycleGolden
// -update` only when a change is *meant* to alter sampling behaviour.
func TestLifecycleGolden(t *testing.T) {
	env := newEnv(t)
	got := goldenScenarios(t, env)
	path := filepath.Join("testdata", "golden_lifecycle.json")

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden lifecycle streams rewritten: %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden data (run with -update to generate): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scenario count %d != golden %d", len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g.Name != w.Name {
			t.Fatalf("scenario %d: name %q != golden %q", i, g.Name, w.Name)
		}
		if g.ResponseTokens != w.ResponseTokens || g.SDSteps != w.SDSteps ||
			g.VanillaSteps != w.VanillaSteps || g.ElapsedNs != w.ElapsedNs {
			t.Errorf("%s: stats diverged from pre-refactor engine: got %+v want %+v",
				g.Name, g, w)
			continue
		}
		if len(g.Tokens) != len(w.Tokens) {
			t.Fatalf("%s: request count %d != golden %d", g.Name, len(g.Tokens), len(w.Tokens))
		}
		for r := range g.Tokens {
			if len(g.Tokens[r]) != len(w.Tokens[r]) {
				t.Fatalf("%s: request %d stream length %d != golden %d",
					g.Name, r, len(g.Tokens[r]), len(w.Tokens[r]))
			}
			for j := range g.Tokens[r] {
				if g.Tokens[r][j] != w.Tokens[r][j] {
					t.Fatalf("%s: request %d token %d = %d, golden %d",
						g.Name, r, j, g.Tokens[r][j], w.Tokens[r][j])
				}
			}
		}
	}
}
