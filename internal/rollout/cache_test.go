package rollout

import (
	"math/rand"
	"testing"
	"time"

	"fastrl/internal/gpu"
	"fastrl/internal/prefixcache"
	"fastrl/internal/workload"
)

// cacheEngine builds an engine sharing the given prefix cache, vanilla
// decoding only (cache behaviour is mode-independent; vanilla keeps the
// test focused).
func cacheEngine(t *testing.T, env *testEnv, cache *prefixcache.Cache) *Engine {
	t.Helper()
	cfg := DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	cfg.SDThreshold = -1
	cfg.Cache = cache
	eng, err := New(cfg, env.target, nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// poolRequests builds requests straight from the task pool so repeated
// calls use identical prompts (unlike env.requests, whose sampler state
// advances between calls).
func poolRequests(env *testEnv, n, maxNew int) []*Request {
	var reqs []*Request
	pool := env.gen.Pool()
	for i := 0; i < n; i++ {
		task := pool[i%len(pool)]
		prior := workload.LengthPrior{TargetLen: maxNew, Sharpness: 25}
		reqs = append(reqs, NewRequest(i, task.Prompt, maxNew, prior, env.tk.Answer(), env.tk.Eos()))
	}
	return reqs
}

// TestCachePrefillSavings runs the same request population twice through
// one cache: the first run misses (cold cache), the second skips every
// prompt position it re-encounters.
func TestCachePrefillSavings(t *testing.T) {
	env := newEnv(t)
	cache := prefixcache.New(prefixcache.Config{})

	cold := cacheEngine(t, env, cache)
	reqs1 := poolRequests(env, 6, 24)
	st1 := cold.Run(reqs1, rand.New(rand.NewSource(11)))
	if st1.PrefillSavedTokens != 0 || st1.PrefillCacheHits != 0 {
		t.Fatalf("cold run saved %d tokens (%d hits), want 0",
			st1.PrefillSavedTokens, st1.PrefillCacheHits)
	}

	warm := cacheEngine(t, env, cache)
	reqs2 := poolRequests(env, 6, 24)
	st2 := warm.Run(reqs2, rand.New(rand.NewSource(11)))
	if st2.PrefillCacheHits != len(reqs2) {
		t.Fatalf("warm run hit on %d/%d requests", st2.PrefillCacheHits, len(reqs2))
	}
	var promptTokens int
	for _, r := range reqs2 {
		promptTokens += len(r.Prompt)
	}
	if st2.PrefillSavedTokens != promptTokens {
		t.Fatalf("warm run saved %d of %d prompt tokens, want all (identical prompts)",
			st2.PrefillSavedTokens, promptTokens)
	}

	// Cache stats agree with engine accounting.
	cs := cache.Stats()
	if cs.SavedPositions != int64(st1.PrefillSavedTokens+st2.PrefillSavedTokens) {
		t.Fatalf("cache saved %d != engine saved %d", cs.SavedPositions, st2.PrefillSavedTokens)
	}
	if cs.Inserts == 0 {
		t.Fatal("completed sequences were not inserted back")
	}
}

// TestCacheDoesNotChangeTokens pins that the cache only changes cost
// accounting, never sampling: the same seeds produce token-identical
// responses with and without a cache.
func TestCacheDoesNotChangeTokens(t *testing.T) {
	env := newEnv(t)

	gen := func(cache *prefixcache.Cache) [][]int {
		eng := cacheEngine(t, env, cache)
		var out [][]int
		for round := 0; round < 2; round++ {
			reqs := poolRequests(env, 4, 20)
			eng.Run(reqs, rand.New(rand.NewSource(int64(round))))
			for _, r := range reqs {
				out = append(out, append([]int(nil), r.Tokens...))
			}
		}
		return out
	}

	withCache := gen(prefixcache.New(prefixcache.Config{}))
	without := gen(nil)
	if len(withCache) != len(without) {
		t.Fatal("request count mismatch")
	}
	for i := range withCache {
		if len(withCache[i]) != len(without[i]) {
			t.Fatalf("request %d: length %d vs %d", i, len(withCache[i]), len(without[i]))
		}
		for j := range withCache[i] {
			if withCache[i][j] != without[i][j] {
				t.Fatalf("request %d diverges at position %d", i, j)
			}
		}
	}
}

// TestCachePrefillCheaper pins the actual virtual-time win: a warm cache
// makes the prefill phase strictly cheaper for identical prompts.
func TestCachePrefillCheaper(t *testing.T) {
	env := newEnv(t)
	cache := prefixcache.New(prefixcache.Config{})

	prefillTime := func(eng *Engine) time.Duration {
		reqs := poolRequests(env, 8, 16)
		eng.Run(reqs, rand.New(rand.NewSource(1)))
		for _, span := range eng.Timeline.Spans {
			if span.Label == "prefill" {
				return span.Duration()
			}
		}
		t.Fatal("no prefill span recorded")
		return 0
	}

	coldDur := prefillTime(cacheEngine(t, env, cache))
	warmDur := prefillTime(cacheEngine(t, env, cache))
	if warmDur >= coldDur {
		t.Fatalf("warm prefill %v not cheaper than cold %v", warmDur, coldDur)
	}
}

// TestCacheHiddenAtPromptBoundary verifies insert-back attaches the
// target's hidden sketch at the prompt boundary node.
func TestCacheHiddenAtPromptBoundary(t *testing.T) {
	env := newEnv(t)
	cache := prefixcache.New(prefixcache.Config{})
	eng := cacheEngine(t, env, cache)
	reqs := poolRequests(env, 3, 12)
	eng.Run(reqs, rand.New(rand.NewSource(3)))

	for _, r := range reqs {
		n, m := cache.Lookup(r.Prompt)
		if n == nil || m != len(r.Prompt) {
			t.Fatalf("prompt not cached: matched %d of %d", m, len(r.Prompt))
		}
		if h := n.Hidden(); h == nil || len(h.Sketch) == 0 {
			t.Fatal("no hidden state at prompt boundary")
		}
		n.Release()
	}
}
