package spot

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/model"
	"fastrl/internal/tokenizer"
)

func makeSeq(n int) Sequence {
	exs := make([]*draft.Example, n)
	for i := range exs {
		exs[i] = &draft.Example{SeqLen: n}
	}
	return Sequence{Examples: exs}
}

func TestDataBufferRotation(t *testing.T) {
	b := NewDataBuffer(100)
	b.Add(makeSeq(5))
	b.Add(makeSeq(50))
	cur, prev := b.Sizes()
	if cur != 2 || prev != 0 {
		t.Fatalf("sizes %d/%d", cur, prev)
	}
	b.StepEnd()
	cur, prev = b.Sizes()
	if cur != 0 || prev != 2 {
		t.Fatalf("after rotation: %d/%d", cur, prev)
	}
	// Empty sequences ignored.
	b.Add(Sequence{})
	if c, _ := b.Sizes(); c != 0 {
		t.Fatal("empty sequence stored")
	}
}

func TestDataBufferCapacityEviction(t *testing.T) {
	b := NewDataBuffer(3)
	for i := 0; i < 10; i++ {
		b.Add(makeSeq(i + 1))
	}
	cur, _ := b.Sizes()
	if cur != 3 {
		t.Fatalf("capacity not enforced: %d", cur)
	}
}

func TestOneStepOffSampling(t *testing.T) {
	// The headline DataBuffer property: batches mixing the current
	// partial (short) responses with previous-step long responses have a
	// longer mean sequence length than current-only sampling.
	rng := rand.New(rand.NewSource(1))

	mixed := NewDataBuffer(1000)
	currentOnly := NewDataBuffer(1000)
	currentOnly.LongFrac = 0

	// Previous step: full length distribution including the long tail.
	for i := 0; i < 200; i++ {
		l := 10 + rng.Intn(20)
		if i%20 == 0 {
			l = 400 + rng.Intn(200) // long tail
		}
		mixed.Add(makeSeq(l))
		currentOnly.Add(makeSeq(l))
	}
	mixed.StepEnd()
	currentOnly.StepEnd()
	// Current step: only early finishes (short) so far.
	for i := 0; i < 100; i++ {
		l := 10 + rng.Intn(20)
		mixed.Add(makeSeq(l))
		currentOnly.Add(makeSeq(l))
	}

	mMixed := mixed.MeanSampledLen(20000, rand.New(rand.NewSource(2)))
	mCur := currentOnly.MeanSampledLen(20000, rand.New(rand.NewSource(2)))
	if mMixed <= mCur*1.2 {
		t.Fatalf("one-step-off sampling should lengthen batches: mixed %.1f vs current-only %.1f", mMixed, mCur)
	}
	t.Logf("mean sampled len: mixed %.1f, current-only %.1f", mMixed, mCur)
}

func TestSampleBatchFallbacks(t *testing.T) {
	b := NewDataBuffer(10)
	if got := b.SampleBatch(100, rand.New(rand.NewSource(1))); got != nil {
		t.Fatal("empty buffer should return nil")
	}
	// Only previous.
	b.Add(makeSeq(5))
	b.StepEnd()
	if got := b.SampleBatch(20, rand.New(rand.NewSource(1))); len(got) == 0 {
		t.Fatal("prev-only sampling failed")
	}
	// Only current.
	b2 := NewDataBuffer(10)
	b2.Add(makeSeq(5))
	if got := b2.SampleBatch(20, rand.New(rand.NewSource(1))); len(got) == 0 {
		t.Fatal("cur-only sampling failed")
	}
}

func TestPackFirstFitDecreasing(t *testing.T) {
	rows, stats := Pack([]int{60, 50, 40, 30, 20}, 100)
	if stats.RealTokens != 200 {
		t.Fatalf("real tokens %d", stats.RealTokens)
	}
	// FFD: [60,40] [50,30,20] -> 2 rows, zero pad.
	if stats.Rows != 2 || stats.PadTokens != 0 {
		t.Fatalf("rows=%d pad=%d, want 2 rows 0 pad: %+v", stats.Rows, stats.PadTokens, rows)
	}
	if stats.Efficiency() != 1 {
		t.Fatalf("efficiency %v", stats.Efficiency())
	}
}

func TestPackTruncatesOversized(t *testing.T) {
	rows, stats := Pack([]int{500}, 100)
	if len(rows) != 1 || rows[0].Used != 100 {
		t.Fatalf("oversized sequence not truncated: %+v", rows)
	}
	if stats.PadTokens != 0 {
		t.Fatalf("pad %d", stats.PadTokens)
	}
	// Zero/negative lengths skipped.
	_, stats = Pack([]int{0, -3, 10}, 100)
	if stats.RealTokens != 10 {
		t.Fatalf("real tokens %d", stats.RealTokens)
	}
}

func TestPackBeatsPadding(t *testing.T) {
	// Long-tail lengths: packing should dominate padded batching by ~2x
	// (paper Fig. 17(b): 2.2x throughput).
	rng := rand.New(rand.NewSource(3))
	lens := make([]int, 64)
	for i := range lens {
		lens[i] = 10 + rng.Intn(30)
		if i%8 == 0 {
			lens[i] = 300 + rng.Intn(400)
		}
	}
	_, packed := Pack(lens, 1024)
	padded := PadBatches(lens, 8)
	gain := packed.Efficiency() / padded.Efficiency()
	if gain < 1.5 {
		t.Fatalf("packing gain %.2fx too small (packed %.2f, padded %.2f)",
			gain, packed.Efficiency(), padded.Efficiency())
	}
	t.Logf("packing efficiency %.2f vs padded %.2f (%.1fx)", packed.Efficiency(), padded.Efficiency(), gain)
}

func TestPackProperty(t *testing.T) {
	f := func(raw []uint16, capRaw uint16) bool {
		capacity := int(capRaw%2000) + 1
		lens := make([]int, len(raw))
		total := 0
		for i, r := range raw {
			lens[i] = int(r % 512)
			l := lens[i]
			if l > capacity {
				l = capacity
			}
			if lens[i] > 0 {
				total += l
			}
		}
		rows, stats := Pack(lens, capacity)
		if stats.RealTokens != total {
			return false
		}
		for _, r := range rows {
			if r.Used > r.Capacity || r.Used <= 0 {
				return false
			}
			if r.Pad() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointModes(t *testing.T) {
	dir := t.TempDir()
	tk := tokenizer.New()
	e := draft.NewEagle(draft.EagleDefault(tk.VocabSize(), gpu.Qwen7B))

	const trainable, frozen = 500 << 20, 4 << 30
	var blocking [3]time.Duration
	for _, mode := range []CkptMode{SyncFull, AsyncFull, SelectiveAsync} {
		c := NewCheckpointer(dir, mode)
		stats, err := c.Save(e, trainable, frozen)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := c.Wait(); err != nil {
			t.Fatalf("%v: background write: %v", mode, err)
		}
		if stats.SavedBytes == 0 {
			t.Fatalf("%v: nothing written", mode)
		}
		blocking[mode] = stats.Blocking
		// The file must exist and round-trip.
		fresh := draft.NewEagle(draft.EagleDefault(tk.VocabSize(), gpu.Qwen7B))
		if _, err := Load(stats.Path, fresh); err != nil {
			t.Fatalf("%v: load: %v", mode, err)
		}
		if fresh.Table().L2Distance(e.Table()) != 0 {
			t.Fatalf("%v: weights did not round-trip", mode)
		}
	}
	// Fig 17(a) ordering: sync >> async > selective async.
	if !(blocking[SyncFull] > blocking[AsyncFull] && blocking[AsyncFull] > blocking[SelectiveAsync]) {
		t.Fatalf("blocking ordering violated: %v", blocking)
	}
	ratio := blocking[SyncFull].Seconds() / blocking[SelectiveAsync].Seconds()
	if ratio < 5 {
		t.Fatalf("selective async should be >=5x faster than sync, got %.1fx", ratio)
	}
	t.Logf("ckpt blocking: sync=%v async=%v selective=%v (%.1fx)",
		blocking[SyncFull], blocking[AsyncFull], blocking[SelectiveAsync], ratio)
}

func TestCheckpointAsyncSnapshotConsistency(t *testing.T) {
	// Training continuing during a background write must not corrupt the
	// checkpoint: the writer works from a snapshot.
	dir := t.TempDir()
	tk := tokenizer.New()
	e := draft.NewEagle(draft.EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	snapshot := e.Clone()

	c := NewCheckpointer(dir, SelectiveAsync)
	stats, err := c.Save(e, 1<<20, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the live drafter immediately.
	e.Table().Row(1)[0] += 42
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	fresh := draft.NewEagle(draft.EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	if _, err := Load(stats.Path, fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Table().L2Distance(snapshot.Table()) != 0 {
		t.Fatal("checkpoint captured post-save mutation")
	}
}

func TestLoadShapeMismatch(t *testing.T) {
	dir := t.TempDir()
	tk := tokenizer.New()
	e := draft.NewEagle(draft.EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	c := NewCheckpointer(dir, SyncFull)
	stats, err := c.Save(e, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	small := draft.EagleDefault(tk.VocabSize(), gpu.Qwen7B)
	small.Buckets = 64
	other := draft.NewEagle(small)
	if _, err := Load(stats.Path, other); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestModeledLatenciesRatio(t *testing.T) {
	// With the paper's ~1/layer_num trainable fraction, selective async
	// should land near the reported 9.2x reduction vs vanilla sync.
	lat := ModeledLatencies(500<<20, 4<<30)
	ratio := lat[SyncFull].Seconds() / lat[SelectiveAsync].Seconds()
	if ratio < 5 || ratio > 200 {
		t.Fatalf("sync/selective ratio %.1f implausible", ratio)
	}
}

func newSpotSetup(t testing.TB) (*Trainer, *model.LM, *tokenizer.Tokenizer) {
	t.Helper()
	tk := tokenizer.New()
	mcfg := model.DefaultConfig(tk.VocabSize(), gpu.Qwen7B)
	mcfg.Buckets = 1 << 10
	var digits []int
	for d := 0; d <= 9; d++ {
		digits = append(digits, tk.Digit(d))
	}
	target := model.New(mcfg, &model.GrammarPrior{AnswerID: tk.Answer(), EosID: tk.Eos(), DigitIDs: digits})
	drafter := draft.NewEagle(draft.EagleDefault(tk.VocabSize(), gpu.Qwen7B))
	buffer := NewDataBuffer(500)
	ckpt := NewCheckpointer(t.TempDir(), SelectiveAsync)
	cfg := DefaultTrainerConfig(gpu.NewDevice(gpu.H100, 1), gpu.Qwen7B)
	tr := NewTrainer(cfg, drafter, target, buffer, ckpt)
	// Drain background checkpoint writes before TempDir cleanup.
	t.Cleanup(func() {
		if err := tr.Ckpt.Wait(); err != nil {
			t.Errorf("checkpoint background write: %v", err)
		}
	})
	return tr, target, tk
}

func fillBuffer(t testing.TB, tr *Trainer, target *model.LM, tk *tokenizer.Tokenizer, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		prompt := []int{tk.Bos(), tk.Digit(rng.Intn(10)), tk.MustID("+"), tk.Digit(rng.Intn(10)), tk.MustID("=")}
		seq := model.Generate(target, prompt, nil, 1, 50, tk.Eos(), rng)
		exs := draft.HarvestExamples(target, model.Context{Tokens: seq, PromptLen: len(prompt)}, true)
		tr.Buffer.Add(Sequence{Examples: exs})
	}
}

func TestRunWindowTrainsWithinBudget(t *testing.T) {
	tr, target, tk := newSpotSetup(t)
	fillBuffer(t, tr, target, tk, 60, 5)
	rng := rand.New(rand.NewSource(6))

	budget := 300 * time.Millisecond
	stats := tr.RunWindow(budget, rng)
	if stats.Batches == 0 {
		t.Fatal("no training happened")
	}
	if stats.Used > budget+budget/2 {
		t.Fatalf("window overran budget: used %v of %v", stats.Used, budget)
	}
	if tr.Drafter.Version == 0 {
		t.Fatal("drafter version not advanced")
	}
	if stats.Examples == 0 || stats.Sequences == 0 {
		t.Fatalf("consumption not accounted: %+v", stats)
	}
	if err := tr.Ckpt.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRunWindowPreemption(t *testing.T) {
	tr, target, tk := newSpotSetup(t)
	fillBuffer(t, tr, target, tk, 60, 7)
	rng := rand.New(rand.NewSource(8))
	// A tight budget fits some batches but not all: the window must
	// report preemption and stop in time.
	one := tr.Cfg.Device.TrainStepCost(tr.Drafter.Arch(), tr.Cfg.PackCapacity*tr.Cfg.RowsPerBatch)
	stats := tr.RunWindow(3*one, rng)
	if !stats.Preempted {
		t.Fatalf("expected preemption: %+v", stats)
	}
	if stats.Batches < 1 {
		t.Fatal("no batch fit the budget")
	}
}

func TestRunWindowEmptyBuffer(t *testing.T) {
	tr, _, _ := newSpotSetup(t)
	stats := tr.RunWindow(time.Second, rand.New(rand.NewSource(1)))
	if stats.Batches != 0 || stats.Used != 0 {
		t.Fatalf("empty buffer should be a no-op: %+v", stats)
	}
}

func TestRunWindowImprovesDrafter(t *testing.T) {
	tr, target, tk := newSpotSetup(t)
	fillBuffer(t, tr, target, tk, 80, 9)
	rng := rand.New(rand.NewSource(10))

	// Held-out evaluation set.
	var test []*draft.Example
	evalRng := rand.New(rand.NewSource(11))
	for i := 0; i < 15; i++ {
		prompt := []int{tk.Bos(), tk.Digit(evalRng.Intn(10)), tk.MustID("+"), tk.Digit(evalRng.Intn(10)), tk.MustID("=")}
		seq := model.Generate(target, prompt, nil, 1, 50, tk.Eos(), evalRng)
		test = append(test, draft.HarvestExamples(target, model.Context{Tokens: seq, PromptLen: len(prompt)}, true)...)
	}
	before := tr.Drafter.TopKAccuracy(test, 3)
	tr.RunWindow(time.Second, rng)
	after := tr.Drafter.TopKAccuracy(test, 3)
	if after <= before {
		t.Fatalf("spot training did not improve drafter: %.3f -> %.3f", before, after)
	}
	t.Logf("drafter top-3: %.3f -> %.3f (%d batches)", before, after, tr.TotalBatches)
}

func TestPackingAblationThroughput(t *testing.T) {
	// With packing disabled the same window trains on fewer real tokens.
	run := func(packing bool) WindowStats {
		tr, target, tk := newSpotSetup(t)
		tr.Cfg.Packing = packing
		tr.Cfg.CkptEveryBatches = 0
		fillBuffer(t, tr, target, tk, 80, 12)
		return tr.RunWindow(500*time.Millisecond, rand.New(rand.NewSource(13)))
	}
	packed := run(true)
	padded := run(false)
	rPacked := float64(packed.RealTokens) / packed.Used.Seconds()
	rPadded := float64(padded.RealTokens) / padded.Used.Seconds()
	if rPacked <= rPadded {
		t.Fatalf("packing should raise real-token throughput: %.0f vs %.0f tok/s", rPacked, rPadded)
	}
	t.Logf("real-token training throughput: packed %.0f tok/s, padded %.0f tok/s (%.2fx)",
		rPacked, rPadded, rPacked/rPadded)
}
