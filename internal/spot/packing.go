package spot

// Sequence packing (paper §4.2, Fig. 17(b)): variable-length training
// sequences are concatenated into fixed-capacity packed rows with
// boundary markers replacing padding, so preemptible training windows
// waste no compute on pad tokens.

// PackedBatch is one packed row: sequence indices and their lengths,
// concatenated up to the capacity.
type PackedBatch struct {
	// Items are indices into the original sequence list.
	Items []int
	// Lens are the corresponding sequence lengths (boundaries).
	Lens []int
	// Used is the total real tokens in the row.
	Used int
	// Capacity is the row size.
	Capacity int
}

// Pad returns the wasted token slots in the row.
func (p PackedBatch) Pad() int { return p.Capacity - p.Used }

// PackStats summarises a packing.
type PackStats struct {
	Rows       int
	RealTokens int
	PadTokens  int
}

// Efficiency is real / (real + pad); 1.0 means no waste.
func (s PackStats) Efficiency() float64 {
	total := s.RealTokens + s.PadTokens
	if total == 0 {
		return 0
	}
	return float64(s.RealTokens) / float64(total)
}

// Pack bins sequences of the given lengths into rows of the given
// capacity using first-fit-decreasing, the standard sequence-packing
// heuristic. Sequences longer than the capacity are truncated to fit
// (one full row each).
func Pack(lens []int, capacity int) ([]PackedBatch, PackStats) {
	if capacity < 1 {
		capacity = 1
	}
	order := make([]int, len(lens))
	for i := range order {
		order[i] = i
	}
	// Sort by length descending (insertion-stable for determinism).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && lens[order[j]] > lens[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	var rows []PackedBatch
	for _, idx := range order {
		l := lens[idx]
		if l <= 0 {
			continue
		}
		if l > capacity {
			l = capacity
		}
		placed := false
		for r := range rows {
			if rows[r].Used+l <= capacity {
				rows[r].Items = append(rows[r].Items, idx)
				rows[r].Lens = append(rows[r].Lens, l)
				rows[r].Used += l
				placed = true
				break
			}
		}
		if !placed {
			rows = append(rows, PackedBatch{
				Items: []int{idx}, Lens: []int{l}, Used: l, Capacity: capacity,
			})
		}
	}
	var stats PackStats
	stats.Rows = len(rows)
	for _, r := range rows {
		stats.RealTokens += r.Used
		stats.PadTokens += r.Pad()
	}
	return rows, stats
}

// PadBatches models the vanilla alternative: sequences grouped into
// batches of the given size, each padded to the batch maximum.
func PadBatches(lens []int, batchSize int) PackStats {
	if batchSize < 1 {
		batchSize = 1
	}
	var stats PackStats
	for i := 0; i < len(lens); i += batchSize {
		end := i + batchSize
		if end > len(lens) {
			end = len(lens)
		}
		maxLen := 0
		for _, l := range lens[i:end] {
			if l > maxLen {
				maxLen = l
			}
		}
		for _, l := range lens[i:end] {
			stats.RealTokens += l
			stats.PadTokens += maxLen - l
		}
		stats.Rows += end - i
	}
	return stats
}
