package spot_test

import (
	"fmt"

	"fastrl/internal/spot"
)

// ExamplePack shows first-fit-decreasing sequence packing: five
// variable-length responses fit two 100-token rows with no padding.
func ExamplePack() {
	rows, stats := spot.Pack([]int{60, 50, 40, 30, 20}, 100)
	fmt.Printf("rows=%d real=%d pad=%d efficiency=%.2f\n",
		len(rows), stats.RealTokens, stats.PadTokens, stats.Efficiency())
	// Output: rows=2 real=200 pad=0 efficiency=1.00
}

// ExamplePadBatches shows the vanilla alternative: batches padded to the
// batch maximum waste most of their compute on a long-tail batch.
func ExamplePadBatches() {
	stats := spot.PadBatches([]int{300, 20, 20, 20}, 4)
	fmt.Printf("real=%d pad=%d efficiency=%.2f\n",
		stats.RealTokens, stats.PadTokens, stats.Efficiency())
	// Output: real=360 pad=840 efficiency=0.30
}
