package spot

import (
	"math/rand"
	"time"

	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/model"
)

// TrainerConfig parameterises spot-training windows.
type TrainerConfig struct {
	// Device executes the (virtual) training steps.
	Device *gpu.Device
	// PackCapacity is the packed-row token capacity.
	PackCapacity int
	// RowsPerBatch is how many packed rows one optimiser step consumes.
	RowsPerBatch int
	// CkptEveryBatches triggers a checkpoint after this many batches
	// (frequent checkpointing bounds preemption loss).
	CkptEveryBatches int
	// Packing disables zero-padding packing when false (ablation).
	Packing bool
	// TrainableBytes / FrozenBytes are the full-scale drafter sizes used
	// for checkpoint latency modelling.
	TrainableBytes int64
	FrozenBytes    int64
}

// DefaultTrainerConfig returns spot-trainer settings for a target
// architecture.
func DefaultTrainerConfig(dev *gpu.Device, target gpu.Arch) TrainerConfig {
	d := gpu.DraftArch(target)
	// Trainable = the single decoder layer; frozen = embedding + head.
	layer := 12 * float64(d.HiddenDim) * float64(d.HiddenDim) * d.BytesPer
	frozen := 2 * float64(d.VocabSize) * float64(d.HiddenDim) * d.BytesPer
	return TrainerConfig{
		Device:           dev,
		PackCapacity:     1024,
		RowsPerBatch:     4,
		CkptEveryBatches: 8,
		Packing:          true,
		TrainableBytes:   int64(layer),
		FrozenBytes:      int64(frozen),
	}
}

// WindowStats summarises one spot-training window.
type WindowStats struct {
	// Batches is the number of optimiser steps taken.
	Batches int
	// Sequences / Examples consumed.
	Sequences int
	Examples  int
	// RealTokens and PadTokens processed (packing efficiency).
	RealTokens int
	PadTokens  int
	// Used is the virtual time consumed (<= the window budget).
	Used time.Duration
	// CkptCount and CkptBlocking account checkpoint overhead.
	CkptCount    int
	CkptBlocking time.Duration
	// FinalCE is the last batch's pre-update cross-entropy.
	FinalCE float64
	// Preempted reports whether the window ended on budget exhaustion
	// with work remaining.
	Preempted bool
}

// Trainer runs preemptible drafter training windows over the DataBuffer.
type Trainer struct {
	Cfg     TrainerConfig
	Drafter *draft.Eagle
	Target  *model.LM
	Buffer  *DataBuffer
	Ckpt    *Checkpointer

	// Totals across windows.
	TotalBatches int
	TotalTime    time.Duration
}

// NewTrainer wires a spot trainer.
func NewTrainer(cfg TrainerConfig, drafter *draft.Eagle, target *model.LM, buffer *DataBuffer, ckpt *Checkpointer) *Trainer {
	if cfg.PackCapacity < 1 {
		cfg.PackCapacity = 1024
	}
	if cfg.RowsPerBatch < 1 {
		cfg.RowsPerBatch = 1
	}
	return &Trainer{Cfg: cfg, Drafter: drafter, Target: target, Buffer: buffer, Ckpt: ckpt}
}

// RunWindow trains until the virtual budget is exhausted or the buffer
// runs dry. The budget is the preemption boundary: the coordinator grants
// a window sized by the observed rollout tail, and the trainer must fit
// inside it (plus at most one in-flight batch).
func (t *Trainer) RunWindow(budget time.Duration, rng *rand.Rand) WindowStats {
	var stats WindowStats
	for stats.Used < budget {
		tokenBudget := t.Cfg.PackCapacity * t.Cfg.RowsPerBatch
		batch := t.Buffer.SampleBatch(tokenBudget, rng)
		if len(batch) == 0 {
			break
		}
		lens := make([]int, len(batch))
		var examples []*draft.Example
		for i, s := range batch {
			lens[i] = s.Len()
			examples = append(examples, s.Examples...)
		}

		// Account the batch's GPU cost: packed rows process only real
		// tokens; padded batching pays for pad slots too.
		var tokens int
		if t.Cfg.Packing {
			_, ps := Pack(lens, t.Cfg.PackCapacity)
			stats.RealTokens += ps.RealTokens
			stats.PadTokens += ps.PadTokens
			tokens = ps.RealTokens + ps.PadTokens
		} else {
			ps := PadBatches(lens, t.Cfg.RowsPerBatch)
			stats.RealTokens += ps.RealTokens
			stats.PadTokens += ps.PadTokens
			tokens = ps.RealTokens + ps.PadTokens
		}
		cost := t.Cfg.Device.TrainStepCost(t.Drafter.Arch(), tokens)
		if stats.Used+cost > budget && stats.Batches > 0 {
			// Preempted: the next batch does not fit.
			stats.Preempted = true
			break
		}

		ts := t.Drafter.Train(examples, t.Target, rng)
		stats.FinalCE = ts.MeanCE
		stats.Batches++
		stats.Sequences += len(batch)
		stats.Examples += len(examples)
		stats.Used += cost

		if t.Ckpt != nil && t.Cfg.CkptEveryBatches > 0 && stats.Batches%t.Cfg.CkptEveryBatches == 0 {
			cs, err := t.Ckpt.Save(t.Drafter, t.Cfg.TrainableBytes, t.Cfg.FrozenBytes)
			if err == nil {
				stats.CkptCount++
				stats.CkptBlocking += cs.Blocking
				stats.Used += cs.Blocking
			}
		}
	}
	t.TotalBatches += stats.Batches
	t.TotalTime += stats.Used
	return stats
}
