// Package spot implements the Spot Trainer of the Adaptive Drafter
// (paper §4.2): preemptible drafter training on idle rollout GPUs, fed by
// an online DataBuffer with one-step-off sampling, with zero-padding
// sequence packing and selective asynchronous checkpointing.
package spot

import (
	"math/rand"
	"sort"
	"sync"

	"fastrl/internal/draft"
)

// Sequence is one response's drafter training data: the per-position
// examples harvested from prefilling it through the target model.
type Sequence struct {
	Examples []*draft.Example
}

// Len returns the number of trainable positions.
func (s Sequence) Len() int { return len(s.Examples) }

// DataBuffer caches drafter training sequences across RL steps. It
// decouples drafter training from rollout completion: training can start
// on partial (early-finishing) responses of the current step, while long
// sequences from the previous step compensate for the scarcity of
// long-tail data in the current partial set ("one-step-off" sampling).
type DataBuffer struct {
	mu sync.Mutex
	// cur holds sequences harvested in the current RL step.
	cur []Sequence
	// prev holds the previous step's sequences, sorted by length
	// descending so long-tail responses are prioritised.
	prev []Sequence
	// Capacity bounds each side's sequence count (oldest evicted).
	Capacity int
	// LongFrac is the fraction of each sampled batch's token budget spent
	// on the previous step's long sequences.
	LongFrac float64
}

// NewDataBuffer creates a buffer with the given per-side capacity.
func NewDataBuffer(capacity int) *DataBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &DataBuffer{Capacity: capacity, LongFrac: 0.3}
}

// Add appends a current-step sequence (as responses complete during
// rollout, or as the inference stage prefills them).
func (b *DataBuffer) Add(seq Sequence) {
	if seq.Len() == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cur = append(b.cur, seq)
	if over := len(b.cur) - b.Capacity; over > 0 {
		b.cur = append([]Sequence(nil), b.cur[over:]...)
	}
}

// StepEnd rotates the buffer at the RL step barrier: the current step's
// sequences become the previous step's pool, prioritised by length.
func (b *DataBuffer) StepEnd() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.prev = b.cur
	b.cur = nil
	sort.SliceStable(b.prev, func(i, j int) bool {
		return b.prev[i].Len() > b.prev[j].Len()
	})
	if len(b.prev) > b.Capacity {
		b.prev = b.prev[:b.Capacity]
	}
}

// Sizes returns (current, previous) sequence counts.
func (b *DataBuffer) Sizes() (int, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.cur), len(b.prev)
}

// SampleBatch draws sequences totalling roughly tokenBudget positions,
// mixing the current partial set with the previous step's long sequences.
// With an empty current set it falls back entirely to the previous step
// and vice versa; returns nil when the buffer is empty.
func (b *DataBuffer) SampleBatch(tokenBudget int, rng *rand.Rand) []Sequence {
	b.mu.Lock()
	defer b.mu.Unlock()
	if tokenBudget < 1 || (len(b.cur) == 0 && len(b.prev) == 0) {
		return nil
	}
	longBudget := int(float64(tokenBudget) * b.LongFrac)
	if len(b.cur) == 0 {
		longBudget = tokenBudget
	}
	if len(b.prev) == 0 {
		longBudget = 0
	}
	var out []Sequence
	used := 0
	// Long samples: biased toward the head (longest) of prev.
	for used < longBudget {
		u := rng.Float64()
		idx := int(u * u * float64(len(b.prev)))
		if idx >= len(b.prev) {
			idx = len(b.prev) - 1
		}
		out = append(out, b.prev[idx])
		used += b.prev[idx].Len()
	}
	for used < tokenBudget && len(b.cur) > 0 {
		s := b.cur[rng.Intn(len(b.cur))]
		out = append(out, s)
		used += s.Len()
	}
	return out
}

// MeanSampledLen estimates the mean sequence length of sampled batches,
// for diagnostics of the one-step-off compensation.
func (b *DataBuffer) MeanSampledLen(tokenBudget int, rng *rand.Rand) float64 {
	batch := b.SampleBatch(tokenBudget, rng)
	if len(batch) == 0 {
		return 0
	}
	var s float64
	for _, seq := range batch {
		s += float64(seq.Len())
	}
	return s / float64(len(batch))
}
