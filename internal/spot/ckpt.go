package spot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"fastrl/internal/draft"
	"fastrl/internal/model"
)

// CkptMode selects the checkpointing strategy (paper Fig. 17(a)).
type CkptMode int

const (
	// SyncFull blocks while writing the full model state (vanilla).
	SyncFull CkptMode = iota
	// AsyncFull stages the full state to host memory, writing in a
	// background thread; blocking time is the staging copy.
	AsyncFull
	// SelectiveAsync stages and writes only the trainable parameters
	// (the drafter's single decoder layer), filtering the frozen
	// embedding and LM head — the paper's design (9.2x faster).
	SelectiveAsync
)

func (m CkptMode) String() string {
	switch m {
	case SyncFull:
		return "sync-full"
	case AsyncFull:
		return "async-full"
	case SelectiveAsync:
		return "selective-async"
	}
	return fmt.Sprintf("ckpt(%d)", int(m))
}

// Bandwidth defaults for modelled latency at full model scale.
const (
	// diskBWGBs is NVMe write bandwidth.
	diskBWGBs = 2.0
	// stageBWGBs is device-to-host staging bandwidth.
	stageBWGBs = 20.0
)

// Checkpointer persists drafter training state. Real bytes are written
// for the (small) simulated drafter; blocking latency is additionally
// modelled from the full-scale byte volumes so Fig. 17(a)'s ratios can be
// reproduced.
type Checkpointer struct {
	Dir  string
	Mode CkptMode
	wg   sync.WaitGroup
	mu   sync.Mutex
	errs []error
	seq  int
}

// NewCheckpointer creates a checkpointer writing into dir.
func NewCheckpointer(dir string, mode CkptMode) *Checkpointer {
	return &Checkpointer{Dir: dir, Mode: mode}
}

// SaveStats reports one checkpoint.
type SaveStats struct {
	// Path of the written checkpoint file.
	Path string
	// SavedBytes is the real byte volume written.
	SavedBytes int64
	// ModeledBytes is the full-scale byte volume the save represents
	// (trainable only under SelectiveAsync; trainable + frozen
	// otherwise).
	ModeledBytes int64
	// Blocking is the modelled time the trainer stalls: disk write for
	// SyncFull, host staging copy for the async modes.
	Blocking time.Duration
	// WallBlocking is the measured wall time the call actually blocked.
	WallBlocking time.Duration
}

// Save checkpoints the drafter. frozenBytes is the full-scale size of the
// frozen layers (embedding + LM head) that SelectiveAsync filters out;
// trainableBytes the full-scale size of the trainable decoder layer.
func (c *Checkpointer) Save(e *draft.Eagle, trainableBytes, frozenBytes int64) (SaveStats, error) {
	start := time.Now()
	c.mu.Lock()
	c.seq++
	seq := c.seq
	c.mu.Unlock()

	stats := SaveStats{
		Path: filepath.Join(c.Dir, fmt.Sprintf("drafter-%05d.ckpt", seq)),
	}
	switch c.Mode {
	case SelectiveAsync:
		stats.ModeledBytes = trainableBytes
	default:
		stats.ModeledBytes = trainableBytes + frozenBytes
	}

	// Snapshot the trainable weights (consistent view for the background
	// writer; the staging copy every mode pays).
	snap := e.Table().Clone()
	version := e.Version

	write := func() error {
		return writeTable(stats.Path, snap, version)
	}
	switch c.Mode {
	case SyncFull:
		if err := write(); err != nil {
			return stats, err
		}
		stats.Blocking = bytesToDur(stats.ModeledBytes, diskBWGBs)
	case AsyncFull, SelectiveAsync:
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			if err := write(); err != nil {
				c.mu.Lock()
				c.errs = append(c.errs, err)
				c.mu.Unlock()
			}
		}()
		stats.Blocking = bytesToDur(stats.ModeledBytes, stageBWGBs)
	}
	stats.SavedBytes = int64(len(snap.Weights())) * 4
	stats.WallBlocking = time.Since(start)
	return stats, nil
}

// Wait drains background writes and returns the first write error, if any.
func (c *Checkpointer) Wait() error {
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.errs) > 0 {
		return c.errs[0]
	}
	return nil
}

// Load restores drafter weights from a checkpoint file, returning the
// saved version counter.
func Load(path string, into *draft.Eagle) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [3]int64
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return 0, fmt.Errorf("spot: reading header: %w", err)
	}
	rows, vocab, version := int(hdr[0]), int(hdr[1]), int(hdr[2])
	tb := into.Table()
	if rows != tb.Rows || vocab != tb.Vocab {
		return 0, fmt.Errorf("spot: checkpoint shape %dx%d does not match drafter %dx%d",
			rows, vocab, tb.Rows, tb.Vocab)
	}
	if err := binary.Read(r, binary.LittleEndian, tb.Weights()); err != nil {
		return 0, fmt.Errorf("spot: reading weights: %w", err)
	}
	into.Version = version
	return version, nil
}

func writeTable(path string, t *model.Table, version int) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	hdr := [3]int64{int64(t.Rows), int64(t.Vocab), int64(version)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		f.Close()
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, t.Weights()); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func bytesToDur(b int64, gbps float64) time.Duration {
	return time.Duration(float64(b) / (gbps * 1e9) * float64(time.Second))
}

// ModeledLatencies returns the Fig. 17(a) comparison for a drafter of the
// given full-scale sizes: blocking checkpoint latency under each mode.
func ModeledLatencies(trainableBytes, frozenBytes int64) map[CkptMode]time.Duration {
	return map[CkptMode]time.Duration{
		SyncFull:       bytesToDur(trainableBytes+frozenBytes, diskBWGBs),
		AsyncFull:      bytesToDur(trainableBytes+frozenBytes, stageBWGBs),
		SelectiveAsync: bytesToDur(trainableBytes, stageBWGBs),
	}
}
