package spot

import (
	"math/rand"
	"testing"
)

func BenchmarkPack(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lens := make([]int, 512)
	for i := range lens {
		lens[i] = 8 + rng.Intn(400)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pack(lens, 1024)
	}
}

func BenchmarkSampleBatch(b *testing.B) {
	buf := NewDataBuffer(4096)
	for i := 0; i < 1000; i++ {
		buf.Add(makeSeq(10 + i%300))
	}
	buf.StepEnd()
	for i := 0; i < 500; i++ {
		buf.Add(makeSeq(10 + i%40))
	}
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.SampleBatch(4096, rng)
	}
}

func BenchmarkCheckpointSave(b *testing.B) {
	dir := b.TempDir()
	tr, _, _ := newSpotSetup(b)
	c := NewCheckpointer(dir, SelectiveAsync)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Save(tr.Drafter, 1<<20, 1<<28); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := c.Wait(); err != nil {
		b.Fatal(err)
	}
}
