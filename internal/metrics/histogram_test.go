package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHistogramBucketLayout pins the bucket geometry: indices are monotone
// and continuous over the value range, and every value lands inside its
// bucket's [low, low+width) span.
func TestHistogramBucketLayout(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 63, 64, 100,
		1 << 20, 1<<20 + 1, 1 << 40, math.MaxInt64 / 2, math.MaxInt64} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		if i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		low, w := bucketLow(i), bucketWidth(i)
		if v < low || (w > 0 && low+w > low && v >= low+w) {
			t.Fatalf("value %d outside bucket %d span [%d, %d)", v, i, low, low+w)
		}
		prev = i
	}
	// Continuity: consecutive buckets tile the line without gaps.
	for i := 0; i < 200; i++ {
		if got := bucketLow(i) + bucketWidth(i); got != bucketLow(i+1) {
			t.Fatalf("bucket %d ends at %d, bucket %d starts at %d", i, got, i+1, bucketLow(i+1))
		}
		if idx := bucketIndex(bucketLow(i)); idx != i {
			t.Fatalf("bucketIndex(bucketLow(%d)) = %d", i, idx)
		}
	}
}

// TestHistogramMergeDeterminism feeds one stream of records into (a) a
// single histogram, (b) shards merged in order, and (c) shards merged in
// reversed and shuffled orders. All four must be bit-identical — the
// property that makes cluster-over-shard percentiles honest.
func TestHistogramMergeDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type rec struct{ v, ex int64 }
	recs := make([]rec, 5000)
	for i := range recs {
		recs[i] = rec{v: int64(rng.ExpFloat64() * 5e6), ex: int64(rng.Intn(800))}
	}

	whole := NewHistogram()
	shards := make([]*Histogram, 7)
	for i := range shards {
		shards[i] = NewHistogram()
	}
	for i, r := range recs {
		whole.Record(r.v, r.ex)
		shards[i%len(shards)].Record(r.v, r.ex)
	}

	merge := func(order []int) *Histogram {
		out := NewHistogram()
		for _, i := range order {
			out.Merge(shards[i])
		}
		return out
	}
	fwd := []int{0, 1, 2, 3, 4, 5, 6}
	rev := []int{6, 5, 4, 3, 2, 1, 0}
	shuf := []int{3, 0, 6, 1, 5, 2, 4}
	a, b, c := merge(fwd), merge(rev), merge(shuf)

	want := whole.Checksum()
	for name, h := range map[string]*Histogram{"forward": a, "reversed": b, "shuffled": c} {
		if h.Checksum() != want {
			t.Fatalf("%s merge checksum %x != single-stream %x", name, h.Checksum(), want)
		}
		if h.N() != whole.N() || h.Sum() != whole.Sum() || h.Min() != whole.Min() || h.Max() != whole.Max() {
			t.Fatalf("%s merge moments diverge", name)
		}
		for _, p := range []float64{0, 50, 95, 99.9, 100} {
			if h.Quantile(p) != whole.Quantile(p) {
				t.Fatalf("%s merge p%v = %d, single-stream %d", name, p, h.Quantile(p), whole.Quantile(p))
			}
		}
	}
	// Record-order permutation on a single histogram too.
	perm := NewHistogram()
	for _, i := range rng.Perm(len(recs)) {
		perm.Record(recs[i].v, recs[i].ex)
	}
	if perm.Checksum() != want {
		t.Fatalf("record-order permutation changed checksum")
	}
}

// TestHistogramExemplarBounds pins exemplar retention: at most
// HistExemplars distinct IDs per bucket, and exactly the largest ones
// regardless of insertion order.
func TestHistogramExemplarBounds(t *testing.T) {
	h := NewHistogram()
	// 20 distinct IDs into one bucket (value 100), shuffled.
	ids := rand.New(rand.NewSource(7)).Perm(20)
	for _, id := range ids {
		h.Record(100, int64(id))
	}
	got := h.ExemplarsAt(50)
	if len(got) != HistExemplars {
		t.Fatalf("retained %d exemplars, want %d", len(got), HistExemplars)
	}
	for i, want := range []int64{19, 18, 17, 16} {
		if got[i] != want {
			t.Fatalf("exemplars = %v, want largest-first 19,18,17,16", got)
		}
	}
	// Duplicates of one ID must not crowd out others.
	h2 := NewHistogram()
	for i := 0; i < 10; i++ {
		h2.Record(100, 5)
	}
	h2.Record(100, 3)
	ex := h2.ExemplarsAt(50)
	sort.Slice(ex, func(i, j int) bool { return ex[i] < ex[j] })
	if len(ex) != 2 || ex[0] != 3 || ex[1] != 5 {
		t.Fatalf("duplicate IDs crowded the bucket: %v", ex)
	}
	// Negative exemplar = no exemplar.
	h3 := NewHistogram()
	h3.Record(100, -1)
	if len(h3.ExemplarsAt(50)) != 0 {
		t.Fatal("negative exemplar was retained")
	}
}

// TestHistogramRecordZeroAlloc pins the hot path: Record must not
// allocate, ever — serving replicas call it per retired request under a
// lock.
func TestHistogramRecordZeroAlloc(t *testing.T) {
	h := NewHistogram()
	var v int64
	if avg := testing.AllocsPerRun(1000, func() {
		h.Record(v, v%64)
		v += 997
	}); avg != 0 {
		t.Fatalf("Record allocates %v allocs/op, want 0", avg)
	}
	src := NewHistogram()
	src.Record(123, 1)
	if avg := testing.AllocsPerRun(100, func() { h.Merge(src) }); avg != 0 {
		t.Fatalf("Merge allocates %v allocs/op, want 0", avg)
	}
}

// TestHistogramQuantileAccuracy checks the advertised bound: quantiles
// are within one sub-bucket width (12.5% relative) of the exact
// percentile on known distributions.
func TestHistogramQuantileAccuracy(t *testing.T) {
	for name, gen := range map[string]func(*rand.Rand) float64{
		"uniform":   func(r *rand.Rand) float64 { return r.Float64() * 10e6 },
		"exp":       func(r *rand.Rand) float64 { return r.ExpFloat64() * 3e6 },
		"lognormal": func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()*1.2 + 14) },
	} {
		rng := rand.New(rand.NewSource(99))
		h := NewHistogram()
		exact := make([]float64, 20000)
		for i := range exact {
			v := gen(rng)
			exact[i] = float64(int64(v))
			h.Record(int64(v), -1)
		}
		for _, p := range []float64{50, 90, 95, 99, 99.9} {
			want := Percentile(exact, p)
			got := float64(h.Quantile(p))
			if want <= 0 {
				continue
			}
			if relErr := math.Abs(got-want) / want; relErr > 1.0/histSubCount {
				t.Errorf("%s p%v: histogram %.0f vs exact %.0f (rel err %.3f > %.3f)",
					name, p, got, want, relErr, 1.0/histSubCount)
			}
		}
	}
}

// TestHistogramEdgeCases covers nil receivers, empty histograms, clamping,
// and the duration helper.
func TestHistogramEdgeCases(t *testing.T) {
	var nilH *Histogram
	if nilH.N() != 0 || nilH.Quantile(50) != 0 || nilH.Stats().N != 0 || nilH.Clone() != nil {
		t.Fatal("nil histogram not inert")
	}
	empty := NewHistogram()
	if empty.Quantile(99) != 0 || len(empty.ExemplarsAt(99)) != 0 {
		t.Fatal("empty histogram not inert")
	}
	h := NewHistogram()
	h.Record(-5, 1) // clamps to 0
	h.RecordDuration(3*time.Millisecond, 2)
	if h.Min() != 0 || h.Max() != int64(3*time.Millisecond) || h.N() != 2 {
		t.Fatalf("min/max/n = %d/%d/%d", h.Min(), h.Max(), h.N())
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p0 = %d", got)
	}
	if got := h.Quantile(100); got != int64(3*time.Millisecond) {
		t.Fatalf("p100 = %d", got)
	}
	// Quantile interpolation clamps into [min, max]: a single sample's
	// every quantile is that sample.
	one := NewHistogram()
	one.Record(1_000_000, 7)
	for _, p := range []float64{1, 50, 99.9} {
		if one.Quantile(p) != 1_000_000 {
			t.Fatalf("single-sample p%v = %d", p, one.Quantile(p))
		}
	}
	st := one.Stats()
	if st.N != 1 || st.P999 != 1_000_000 || len(st.TailExemplars) != 1 || st.TailExemplars[0] != 7 {
		t.Fatalf("stats = %+v", st)
	}
	// Clone independence.
	cl := one.Clone()
	cl.Record(2_000_000, 8)
	if one.N() != 1 || cl.N() != 2 {
		t.Fatal("clone aliases parent")
	}
	// Merge into empty adopts source moments.
	dst := NewHistogram()
	dst.Merge(one)
	if dst.Min() != 1_000_000 || dst.Max() != 1_000_000 || dst.N() != 1 {
		t.Fatalf("merge-into-empty moments: min=%d max=%d n=%d", dst.Min(), dst.Max(), dst.N())
	}
	dst.Merge(nil)
	dst.Merge(NewHistogram())
	if dst.N() != 1 {
		t.Fatal("nil/empty merge mutated histogram")
	}
}
