package metrics

import (
	"bytes"
	"sync"
	"testing"
)

func TestRegistryCounterIdempotent(t *testing.T) {
	g := NewRegistry()
	a := g.Counter("served")
	b := g.Counter("served")
	if a != b {
		t.Fatalf("Counter not idempotent by name")
	}
	a.Add(3)
	if got := g.Snapshot().Counter("served"); got != 3 {
		t.Fatalf("snapshot served = %d, want 3", got)
	}
	if got := g.Snapshot().Counter("absent"); got != 0 {
		t.Fatalf("absent counter = %d, want 0", got)
	}
}

// The registry's load-bearing guarantee: a snapshot never observes a
// terminal-transition group half-applied, so outcome counters can never
// exceed the submission counter — under concurrent load, not just at
// quiescence.
func TestSnapshotNeverTearsUpdateGroups(t *testing.T) {
	g := NewRegistry()
	submitted := g.Counter("submitted")
	served := g.Counter("served")
	cancelled := g.Counter("cancelled")

	const workers = 4
	const perWorker = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				submitted.Inc()
				g.Update(func() {
					if i%3 == 0 {
						cancelled.Inc()
					} else {
						served.Inc()
					}
				})
			}
		}(w)
	}
	var swg sync.WaitGroup
	swg.Add(1)
	go func() {
		defer swg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := g.Snapshot()
			if term := s.Counter("served") + s.Counter("cancelled"); term > s.Counter("submitted") {
				t.Errorf("torn snapshot: terminal %d > submitted %d", term, s.Counter("submitted"))
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	swg.Wait()

	s := g.Snapshot()
	if got := s.Counter("served") + s.Counter("cancelled"); got != workers*perWorker {
		t.Fatalf("terminal total %d, want %d", got, workers*perWorker)
	}
}

func TestGaugesAndReservoirs(t *testing.T) {
	g := NewRegistry()
	g.Gauge("queue_len", func() float64 { return 7 })
	res := NewReservoir(64, 1)
	for i := 1; i <= 10; i++ {
		res.Add(float64(i))
	}
	g.ReservoirFunc("latency", func() *Reservoir { return res.Clone() })
	g.ReservoirFunc("empty", func() *Reservoir { return nil })

	s := g.Snapshot()
	if s.Gauge("queue_len") != 7 {
		t.Fatalf("gauge = %v, want 7", s.Gauge("queue_len"))
	}
	r := s.Reservoirs["latency"]
	if r.Seen != 10 || r.Len != 10 || r.Mean != 5.5 {
		t.Fatalf("reservoir stats %+v", r)
	}
	if _, ok := s.Reservoirs["empty"]; !ok {
		t.Fatalf("nil reservoir provider should still appear (zeroed)")
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() Snapshot {
		g := NewRegistry()
		g.Counter("b/served").Add(2)
		g.Counter("a/served").Add(1)
		g.Gauge("z", func() float64 { return 1 })
		g.Gauge("a", func() float64 { return 2 })
		return g.Snapshot()
	}
	j1, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\nvs\n%s", j1, j2)
	}
	str := build().String()
	if str == "" || str != build().String() {
		t.Fatalf("snapshot String not deterministic")
	}
}
