package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileEmptyAndNaN(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"nil", nil, 50, 0},
		{"empty", []float64{}, 95, 0},
		{"all-nan", []float64{nan, nan}, 50, 0},
		{"nan-ignored-median", []float64{nan, 1, 3, nan}, 50, 2},
		{"nan-ignored-p0", []float64{5, nan, 2}, 0, 2},
		{"nan-ignored-p100", []float64{5, nan, 2}, 100, 5},
		{"single-after-filter", []float64{nan, 7}, 95, 7},
	}
	for _, c := range cases {
		got := Percentile(c.xs, c.p)
		if math.IsNaN(got) || math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Percentile(%v, %v) = %v, want %v", c.name, c.xs, c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, p8 uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(p8) / 255 * 100
		got := Percentile(xs, p)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return got >= sorted[0] && got <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMedianStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if m := Median(xs); math.Abs(m-4.5) > 1e-9 {
		t.Errorf("Median = %v", m)
	}
	if s := Stddev(xs); math.Abs(s-2) > 1e-9 {
		t.Errorf("Stddev = %v, want 2", s)
	}
	if Stddev([]float64{1}) != 0 {
		t.Error("singleton stddev should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Max(xs) != 7 || Min(xs) != -1 {
		t.Fatalf("Max/Min = %v/%v", Max(xs), Min(xs))
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Fatal("empty Max/Min should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-9 {
		t.Fatalf("GeoMean = %v, want 2", g)
	}
	// Non-positive entries skipped.
	if g := GeoMean([]float64{-3, 0, 1, 4}); math.Abs(g-2) > 1e-9 {
		t.Fatalf("GeoMean with junk = %v, want 2", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean should be 0")
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(3)
	for i := 1; i <= 5; i++ {
		w.Push(float64(i))
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	vals := w.Values()
	sort.Float64s(vals)
	if vals[0] != 3 || vals[2] != 5 {
		t.Fatalf("window should hold {3,4,5}, got %v", vals)
	}
	if w.Median() != 4 {
		t.Fatalf("Median = %v, want 4", w.Median())
	}
	if w.Mean() != 4 {
		t.Fatalf("Mean = %v, want 4", w.Mean())
	}
}

func TestWindowCapacityClamp(t *testing.T) {
	w := NewWindow(0)
	w.Push(1)
	w.Push(2)
	if w.Len() != 1 || w.Values()[0] != 2 {
		t.Fatalf("capacity clamp failed: %v", w.Values())
	}
}

func TestWindowSlidingProperty(t *testing.T) {
	// The window always holds the most recent min(n, cap) values.
	rng := rand.New(rand.NewSource(1))
	w := NewWindow(16)
	var all []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64()
		all = append(all, x)
		w.Push(x)
		start := 0
		if len(all) > 16 {
			start = len(all) - 16
		}
		want := append([]float64(nil), all[start:]...)
		got := w.Values()
		sort.Float64s(want)
		sort.Float64s(got)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("at step %d window contents diverge", i)
			}
		}
	}
}

func TestReservoir(t *testing.T) {
	r := NewReservoir(8, 1)
	for i := 1; i <= 5; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 5 || r.Seen() != 5 {
		t.Fatalf("partial fill: len=%d seen=%d", r.Len(), r.Seen())
	}
	if got := r.Percentile(50); got != 3 {
		t.Fatalf("median of {1..5} = %v", got)
	}
	for i := 6; i <= 1000; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 8 || r.Seen() != 1000 {
		t.Fatalf("after overflow: len=%d seen=%d", r.Len(), r.Seen())
	}
	// The sample stays within the observed range.
	if lo, hi := r.Percentile(0), r.Percentile(100); lo < 1 || hi > 1000 {
		t.Fatalf("sample escaped range: [%v, %v]", lo, hi)
	}
	// Same seed and stream ⇒ same sample.
	a, b := NewReservoir(4, 7), NewReservoir(4, 7)
	for i := 0; i < 200; i++ {
		a.Add(float64(i))
		b.Add(float64(i))
	}
	for p := 0.0; p <= 100; p += 25 {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("reservoirs diverged at p%v", p)
		}
	}
	if NewReservoir(0, 1).capacity != 1 {
		t.Fatal("capacity clamp failed")
	}
}

func TestLinearHistogram(t *testing.T) {
	h := NewLinearHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	h.Observe(-1) // underflow
	h.Observe(11) // overflow
	pdf := h.PDF()
	for i, p := range pdf {
		if math.Abs(p-1.0/12) > 1e-9 {
			t.Fatalf("bin %d pdf = %v", i, p)
		}
	}
	if c := h.BinCenter(0); math.Abs(c-0.5) > 1e-9 {
		t.Fatalf("BinCenter(0) = %v", c)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(1000, 0); got != 0 {
		t.Fatalf("zero-duration throughput = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"name", "value"}}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b", "22222")
	s := tbl.String()
	if len(s) == 0 {
		t.Fatal("empty render")
	}
	lines := 0
	for _, c := range s {
		if c == '\n' {
			lines++
		}
	}
	if lines != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", lines, s)
	}
}

func TestF(t *testing.T) {
	if F(1.500, 2) != "1.5" {
		t.Fatalf("F(1.5) = %q", F(1.500, 2))
	}
	if F(2.0, 2) != "2" {
		t.Fatalf("F(2.0) = %q", F(2.0, 2))
	}
}

func TestSeriesAdd(t *testing.T) {
	var s Series
	s.Add(1, 2)
	s.Add(3, 4)
	if len(s.X) != 2 || s.Y[1] != 4 {
		t.Fatalf("Series = %+v", s)
	}
}

func TestPercentileP999(t *testing.T) {
	// 10,000 samples 1..10000: p99.9 interpolates near the top of the tail.
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	got := Percentile(xs, 99.9)
	if got < 9990 || got > 9991 {
		t.Fatalf("p99.9 = %v, want ~9990", got)
	}
	// Small samples saturate at the max rather than extrapolating.
	if got := Percentile([]float64{1, 2, 3}, 99.9); got < 2.99 || got > 3 {
		t.Fatalf("p99.9 of 3 samples = %v, want ~3", got)
	}
	r := NewReservoir(4096, 1)
	for _, x := range xs {
		r.Add(x)
	}
	if got := r.Percentile(99.9); got < 9000 {
		t.Fatalf("reservoir p99.9 = %v, want deep in the tail", got)
	}
}

func TestReservoirValuesAndClone(t *testing.T) {
	r := NewReservoir(8, 3)
	for i := 0; i < 100; i++ {
		r.Add(float64(i))
	}
	vals := r.Values()
	if len(vals) != 8 {
		t.Fatalf("Values len %d, want 8", len(vals))
	}
	vals[0] = -1 // must not alias the reservoir's storage
	c := r.Clone()
	if c.Seen() != r.Seen() || c.Len() != r.Len() {
		t.Fatalf("clone shape: seen %d/%d len %d/%d", c.Seen(), r.Seen(), c.Len(), r.Len())
	}
	for i, v := range c.Values() {
		if v == -1 {
			t.Fatal("Values aliased reservoir storage")
		}
		if v != r.Values()[i] {
			t.Fatalf("clone sample %d differs", i)
		}
	}
	// Mutating the clone must not touch the original.
	before := r.Values()
	for i := 0; i < 1000; i++ {
		c.Add(float64(1000 + i))
	}
	for i, v := range r.Values() {
		if v != before[i] {
			t.Fatalf("clone Add mutated original at %d", i)
		}
	}
}

func TestMergeReservoirs(t *testing.T) {
	mk := func(vals []float64, extraSeen int) *Reservoir {
		r := NewReservoir(len(vals), 1)
		for _, v := range vals {
			r.Add(v)
		}
		r.seen += extraSeen
		return r
	}
	cases := []struct {
		name string
		srcs []*Reservoir
		cap  int
		// wantLo/wantHi bound the merged mean; wantSeen the total.
		wantLo, wantHi float64
		wantSeen       int
		wantLen        int
	}{
		{
			name:   "balanced",
			srcs:   []*Reservoir{mk([]float64{1, 1, 1, 1}, 0), mk([]float64{3, 3, 3, 3}, 0)},
			cap:    2048,
			wantLo: 1.9, wantHi: 2.1,
			wantSeen: 8, wantLen: 2048,
		},
		{
			name: "weighted-by-seen",
			srcs: []*Reservoir{mk([]float64{0, 0, 0, 0}, 96), mk([]float64{10, 10, 10, 10}, 0)},
			cap:  4096,
			// First shard saw 100 values, second 4: ~4% mass at 10.
			wantLo: 0.1, wantHi: 0.8,
			wantSeen: 104, wantLen: 4096,
		},
		{
			name:   "nil-and-empty-skipped",
			srcs:   []*Reservoir{nil, NewReservoir(4, 9), mk([]float64{5, 5}, 0)},
			cap:    64,
			wantLo: 5, wantHi: 5,
			wantSeen: 2, wantLen: 64,
		},
		{
			name:   "all-unusable",
			srcs:   []*Reservoir{nil, NewReservoir(4, 9)},
			cap:    64,
			wantLo: 0, wantHi: 0,
			wantSeen: 0, wantLen: 0,
		},
		{
			name:   "no-sources",
			srcs:   nil,
			cap:    16,
			wantLo: 0, wantHi: 0,
			wantSeen: 0, wantLen: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := MergeReservoirs(tc.cap, 42, tc.srcs...)
			if m == nil {
				t.Fatal("nil merge result")
			}
			if m.Seen() != tc.wantSeen {
				t.Fatalf("Seen = %d, want %d", m.Seen(), tc.wantSeen)
			}
			if m.Len() != tc.wantLen {
				t.Fatalf("Len = %d, want %d", m.Len(), tc.wantLen)
			}
			if mean := Mean(m.Values()); mean < tc.wantLo || mean > tc.wantHi {
				t.Fatalf("merged mean = %v, want in [%v, %v]", mean, tc.wantLo, tc.wantHi)
			}
			// Determinism: same seed, same merge.
			again := MergeReservoirs(tc.cap, 42, tc.srcs...)
			av, bv := m.Values(), again.Values()
			for i := range av {
				if av[i] != bv[i] {
					t.Fatalf("merge nondeterministic at %d", i)
				}
			}
		})
	}
	// NaN samples in a source survive the merge but never poison Percentile.
	nanSrc := mk([]float64{math.NaN(), 2, 2, 2}, 0)
	m := MergeReservoirs(256, 7, nanSrc)
	if p := m.Percentile(99.9); math.IsNaN(p) {
		t.Fatal("NaN leaked into merged percentile")
	}
	// Merged tails reach the source extremes: p99.9 over a heavy shard.
	big := NewReservoir(1024, 5)
	for i := 0; i < 5000; i++ {
		big.Add(float64(i))
	}
	m = MergeReservoirs(4096, 11, big, mk([]float64{1, 1}, 0))
	if p := m.Percentile(99.9); p < 4000 {
		t.Fatalf("merged p99.9 = %v, want deep tail", p)
	}
}
