package metrics

import (
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero Counter loads %d", c.Load())
	}
	c.Inc()
	c.Add(4)
	c.Add(-2)
	if c.Load() != 3 {
		t.Fatalf("Counter = %d, want 3", c.Load())
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Rate() != 0 || r.Total() != 0 {
		t.Fatal("zero Ratio must report 0 before observations")
	}
	r.Observe(true)
	r.Observe(true)
	r.Observe(false)
	r.Observe(true)
	if r.Hits() != 3 || r.Total() != 4 {
		t.Fatalf("Ratio = %d/%d, want 3/4", r.Hits(), r.Total())
	}
	if got := r.Rate(); got != 0.75 {
		t.Fatalf("Rate = %v, want 0.75", got)
	}
}

// TestRatioConcurrent exercises the concurrency contract: hits never
// exceed total and every observation is counted exactly once.
func TestRatioConcurrent(t *testing.T) {
	var r Ratio
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Observe(i%2 == 0)
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != workers*per {
		t.Fatalf("total = %d, want %d", r.Total(), workers*per)
	}
	if r.Hits() != workers*per/2 {
		t.Fatalf("hits = %d, want %d", r.Hits(), workers*per/2)
	}
}
