package metrics

import (
	"math"
	"math/bits"
	"time"
)

// Histogram is a fixed-shape log-linear histogram over non-negative int64
// values (nanoseconds, by convention). Every histogram in the process has
// the identical bucket layout — histSubCount linear sub-buckets per power
// of two — so Merge is exact bucket-wise addition: unlike sampling-based
// reservoir merging, merged percentiles are deterministic and independent
// of merge order. Relative quantile error is bounded by the sub-bucket
// width, 1/histSubCount = 12.5%.
//
// Each bucket additionally retains up to HistExemplars exemplar request
// IDs — the largest distinct IDs ever recorded into that bucket — so a
// tail bucket links directly back to flight-recorder rings and trace
// spans ("which requests are slow"). Keeping the K largest distinct IDs
// is a pure set operation, which is what makes exemplar retention (and
// therefore Merge) invariant under record/merge permutation.
//
// Record is zero-alloc: all state lives in fixed arrays inside the
// struct. Not goroutine-safe; callers guard it with their own lock
// (same discipline as Reservoir).
type Histogram struct {
	counts [histBuckets]int64
	ex     [histBuckets][HistExemplars]int64
	exLen  [histBuckets]uint8
	n      int64
	sum    int64
	min    int64
	max    int64
}

const (
	histSubBits  = 3
	histSubCount = 1 << histSubBits // 8 linear sub-buckets per octave
	// Buckets 0..histSubCount-1 are width-1; each octave above contributes
	// histSubCount more, up to values just below 2^63.
	histBuckets = (63-histSubBits)*histSubCount + histSubCount

	// HistExemplars is the per-bucket exemplar retention bound K.
	HistExemplars = 4
)

// NewHistogram returns an empty histogram. The zero value is also ready
// to use; the constructor exists for symmetry with NewReservoir.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a non-negative value to its bucket. Monotone and
// continuous: u=7→7, u=8→8, u=15→15, u=16→16.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1
	sub := int((u >> (uint(exp) - histSubBits)) & (histSubCount - 1))
	return (exp-histSubBits)*histSubCount + sub + histSubCount
}

// bucketLow returns the inclusive lower bound of bucket i.
func bucketLow(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	e := i/histSubCount - 1 + histSubBits
	sub := i & (histSubCount - 1)
	return int64(1)<<uint(e) | int64(sub)<<uint(e-histSubBits)
}

// bucketWidth returns the width of bucket i.
func bucketWidth(i int) int64 {
	if i < histSubCount {
		return 1
	}
	e := i/histSubCount - 1 + histSubBits
	return int64(1) << uint(e-histSubBits)
}

// Record adds one value with an optional exemplar request ID (negative =
// no exemplar). Negative values clamp to zero. Zero-alloc.
func (h *Histogram) Record(v int64, exemplar int64) {
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	h.counts[i]++
	h.n++
	h.sum += v
	if h.n == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if exemplar >= 0 {
		h.addExemplar(i, exemplar)
	}
}

// RecordDuration records a duration in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration, exemplar int64) {
	h.Record(int64(d), exemplar)
}

// addExemplar keeps bucket i's slots as the K largest distinct IDs, stored
// sorted ascending. Insertion is order-invariant: the retained set depends
// only on the set of IDs ever offered.
func (h *Histogram) addExemplar(i int, id int64) {
	n := int(h.exLen[i])
	slots := &h.ex[i]
	for j := 0; j < n; j++ {
		if slots[j] == id {
			return
		}
	}
	if n < HistExemplars {
		j := n
		for j > 0 && slots[j-1] > id {
			slots[j] = slots[j-1]
			j--
		}
		slots[j] = id
		h.exLen[i] = uint8(n + 1)
		return
	}
	if id <= slots[0] {
		return
	}
	j := 1
	for j < HistExemplars && slots[j] < id {
		slots[j-1] = slots[j]
		j++
	}
	slots[j-1] = id
}

// N returns the number of recorded values.
func (h *Histogram) N() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the running sum of recorded values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the mean recorded value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.max
}

// Merge folds src into h: bucket-wise count addition plus exemplar-set
// union (keeping the K largest distinct IDs per bucket). Because both
// operations are commutative and associative, any merge order over any
// partitioning of the same records yields the identical histogram.
func (h *Histogram) Merge(src *Histogram) {
	if src == nil || src.n == 0 {
		return
	}
	if h.n == 0 || src.min < h.min {
		h.min = src.min
	}
	if src.max > h.max {
		h.max = src.max
	}
	h.n += src.n
	h.sum += src.sum
	for i := range h.counts {
		h.counts[i] += src.counts[i]
		for j := 0; j < int(src.exLen[i]); j++ {
			h.addExemplar(i, src.ex[i][j])
		}
	}
}

// Clone returns an independent copy. Stats readers use it to hand out
// snapshots without racing the writer's lock discipline.
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	out := *h
	return &out
}

// quantileBucket returns the bucket index holding the p-th percentile and
// the cumulative count below it, or -1 when empty.
func (h *Histogram) quantileBucket(p float64) (int, int64, int64) {
	if h == nil || h.n == 0 {
		return -1, 0, 0
	}
	target := int64(math.Ceil(p / 100 * float64(h.n)))
	if target < 1 {
		target = 1
	}
	if target > h.n {
		target = h.n
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i]
		if c == 0 {
			continue
		}
		if cum+c >= target {
			return i, cum, target
		}
		cum += c
	}
	return -1, 0, 0
}

// Quantile returns the p-th percentile (0..100) with linear interpolation
// inside the containing bucket, clamped to the observed [min, max]. The
// result is exact to within the bucket width (≤ 12.5% relative error).
func (h *Histogram) Quantile(p float64) int64 {
	if h == nil || h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	i, cum, target := h.quantileBucket(p)
	if i < 0 {
		return h.max
	}
	frac := float64(target-cum) / float64(h.counts[i])
	v := bucketLow(i) + int64(frac*float64(bucketWidth(i)))
	if v < h.min {
		v = h.min
	}
	if v > h.max {
		v = h.max
	}
	return v
}

// ExemplarsAt returns the exemplar request IDs retained by the bucket
// holding the p-th percentile, largest first. These are the request IDs
// to look up in flight-recorder rings and trace exports.
func (h *Histogram) ExemplarsAt(p float64) []int64 {
	i, _, _ := h.quantileBucket(p)
	if i < 0 {
		return nil
	}
	n := int(h.exLen[i])
	out := make([]int64, 0, n)
	for j := n - 1; j >= 0; j-- {
		out = append(out, h.ex[i][j])
	}
	return out
}

// Checksum returns an FNV-1a hash over the full histogram state (counts,
// exemplars, moments). Two histograms built from the same records in any
// order hash identically — experiments pin determinism on this.
func (h *Histogram) Checksum() uint64 {
	const prime = 1099511628211
	hash := uint64(14695981039346656037)
	mix := func(v int64) {
		u := uint64(v)
		for s := 0; s < 64; s += 8 {
			hash ^= (u >> uint(s)) & 0xff
			hash *= prime
		}
	}
	if h == nil {
		return hash
	}
	mix(h.n)
	mix(h.sum)
	mix(h.min)
	mix(h.max)
	for i := range h.counts {
		if h.counts[i] == 0 && h.exLen[i] == 0 {
			continue
		}
		mix(int64(i))
		mix(h.counts[i])
		for j := 0; j < int(h.exLen[i]); j++ {
			mix(h.ex[i][j])
		}
	}
	return hash
}

// HistogramStats summarises one histogram at snapshot time. Values are
// nanoseconds (the convention for every latency histogram in the repo).
// TailExemplars are the request IDs retained by the p99.9 bucket.
type HistogramStats struct {
	N             int64   `json:"n"`
	P50           int64   `json:"p50_ns"`
	P95           int64   `json:"p95_ns"`
	P999          int64   `json:"p999_ns"`
	Mean          float64 `json:"mean_ns"`
	Min           int64   `json:"min_ns"`
	Max           int64   `json:"max_ns"`
	TailExemplars []int64 `json:"tail_exemplars,omitempty"`
}

// Stats computes the snapshot summary (nil-safe: a nil histogram reports
// zeros, mirroring how the registry treats nil reservoirs).
func (h *Histogram) Stats() HistogramStats {
	if h == nil || h.n == 0 {
		return HistogramStats{}
	}
	return HistogramStats{
		N:             h.n,
		P50:           h.Quantile(50),
		P95:           h.Quantile(95),
		P999:          h.Quantile(99.9),
		Mean:          h.Mean(),
		Min:           h.min,
		Max:           h.max,
		TailExemplars: h.ExemplarsAt(99.9),
	}
}
