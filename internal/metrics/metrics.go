// Package metrics provides the small statistics toolkit used across the
// simulator: percentiles, histograms, moving windows, and throughput
// accounting.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for empty input. NaN
// samples are ignored (they would otherwise poison the sort order and the
// interpolation); a slice of only NaNs behaves like an empty one. Cold
// per-shard serving stats call this with zero or partial samples, so the
// guards are load-bearing, not defensive.
func Percentile(xs []float64, p float64) float64 {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			sorted = append(sorted, x)
		}
	}
	if len(sorted) == 0 {
		return 0
	}
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Max returns the maximum, or 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, or 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of strictly positive values; zero or
// negative entries are skipped.
func GeoMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Window is a fixed-capacity sliding window of float64 observations — the
// deque used by the BEG-MAB selector's reward history.
type Window struct {
	cap  int
	data []float64
	head int
	full bool
}

// NewWindow creates a window with the given capacity (minimum 1).
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		capacity = 1
	}
	return &Window{cap: capacity, data: make([]float64, 0, capacity)}
}

// Push appends an observation, evicting the oldest when full.
func (w *Window) Push(x float64) {
	if len(w.data) < w.cap {
		w.data = append(w.data, x)
		return
	}
	w.data[w.head] = x
	w.head = (w.head + 1) % w.cap
	w.full = true
}

// Len returns the number of stored observations.
func (w *Window) Len() int { return len(w.data) }

// Values returns a copy of the stored observations (order unspecified).
func (w *Window) Values() []float64 { return append([]float64(nil), w.data...) }

// Median returns the median of the stored observations (0 when empty).
func (w *Window) Median() float64 { return Median(w.data) }

// Mean returns the mean of the stored observations (0 when empty).
func (w *Window) Mean() float64 { return Mean(w.data) }

// Reservoir is a fixed-capacity uniform sample over an unbounded stream
// (Vitter's algorithm R): the first capacity values fill it, after which
// each new value replaces a uniformly random slot with probability
// capacity/seen, keeping the sample uniform over the full history.
// Long-running latency accumulators (serving, cluster) use it to stay
// bounded. Not goroutine-safe; callers guard it with their own lock.
type Reservoir struct {
	data     []float64
	capacity int
	seen     int
	rng      *rand.Rand
}

// NewReservoir creates a reservoir with the given capacity (minimum 1)
// and replacement-stream seed.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{
		data:     make([]float64, 0, capacity),
		capacity: capacity,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Add offers one value to the reservoir.
func (r *Reservoir) Add(v float64) {
	r.seen++
	if len(r.data) < r.capacity {
		r.data = append(r.data, v)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.capacity {
		r.data[j] = v
	}
}

// Seen returns how many values were ever offered.
func (r *Reservoir) Seen() int { return r.seen }

// Len returns the stored sample count (≤ capacity).
func (r *Reservoir) Len() int { return len(r.data) }

// Percentile returns the p-th percentile of the stored sample. Fractional
// percentiles (e.g. 99.9) interpolate between closest ranks like the
// package-level Percentile; tails beyond the sample resolution saturate at
// the maximum stored value.
func (r *Reservoir) Percentile(p float64) float64 { return Percentile(r.data, p) }

// Values returns a copy of the stored sample.
func (r *Reservoir) Values() []float64 { return append([]float64(nil), r.data...) }

// Clone returns an independent copy of the reservoir: same sample, same
// seen count, and a replacement stream forked from the current RNG state.
// Stats readers use it to hand out snapshots without racing the writer's
// lock discipline.
func (r *Reservoir) Clone() *Reservoir {
	out := &Reservoir{
		data:     append(make([]float64, 0, r.capacity), r.data...),
		capacity: r.capacity,
		seen:     r.seen,
		rng:      rand.New(rand.NewSource(int64(r.seen)*0x9e3779b9 + 1)),
	}
	return out
}

// MergeReservoirs combines per-shard reservoirs into one cluster-level
// reservoir of the given capacity, weighting each source by how many values
// it has *seen* (not how many it stores): a shard that observed 10x the
// traffic contributes 10x the mass to the merged tail, which is what makes
// cluster p99.9 over per-shard samples honest. Sampling is with
// replacement, seeded, so a fixed seed yields a deterministic merge. Nil
// and empty sources are skipped; with no usable sources the result is an
// empty reservoir. The merged Seen reports the total values the sources
// observed.
func MergeReservoirs(capacity int, seed int64, srcs ...*Reservoir) *Reservoir {
	out := NewReservoir(capacity, seed)
	type src struct {
		data []float64
		seen int
	}
	var use []src
	total := 0
	for _, r := range srcs {
		if r == nil || len(r.data) == 0 || r.seen <= 0 {
			continue
		}
		use = append(use, src{data: r.data, seen: r.seen})
		total += r.seen
	}
	if total == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < out.capacity; i++ {
		// Pick a source proportional to its observed mass, then a uniform
		// element of its stored sample.
		pick := rng.Intn(total)
		for _, s := range use {
			if pick < s.seen {
				out.data = append(out.data, s.data[rng.Intn(len(s.data))])
				break
			}
			pick -= s.seen
		}
	}
	out.seen = total
	return out
}

// LinearHistogram is a fixed-bin histogram over [min, max) used for
// figure-style distributions (accepted-length PDFs). Latency percentiles
// use the log-bucket Histogram in histogram.go instead.
type LinearHistogram struct {
	MinV, MaxV float64
	Counts     []int
	N          int
	overflow   int
	underflow  int
}

// NewLinearHistogram creates a histogram with nbins bins spanning [min, max).
func NewLinearHistogram(minV, maxV float64, nbins int) *LinearHistogram {
	if nbins < 1 {
		nbins = 1
	}
	if maxV <= minV {
		maxV = minV + 1
	}
	return &LinearHistogram{MinV: minV, MaxV: maxV, Counts: make([]int, nbins)}
}

// Observe adds one sample.
func (h *LinearHistogram) Observe(x float64) {
	h.N++
	if x < h.MinV {
		h.underflow++
		return
	}
	if x >= h.MaxV {
		h.overflow++
		return
	}
	idx := int((x - h.MinV) / (h.MaxV - h.MinV) * float64(len(h.Counts)))
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
}

// PDF returns per-bin probability mass (fractions of all observations).
func (h *LinearHistogram) PDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.N == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.N)
	}
	return out
}

// BinCenter returns the centre value of bin i.
func (h *LinearHistogram) BinCenter(i int) float64 {
	w := (h.MaxV - h.MinV) / float64(len(h.Counts))
	return h.MinV + (float64(i)+0.5)*w
}

// Throughput converts a token count over a virtual duration to tokens/sec.
func Throughput(tokens int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(tokens) / elapsed.Seconds()
}

// Series is a labelled sequence of (x, y) points used by experiment
// runners to print figure data.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table is a simple fixed-column text table for experiment output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// F formats a float with the given precision, trimming to a compact cell.
func F(x float64, prec int) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.*f", prec, x), "0"), ".")
}
