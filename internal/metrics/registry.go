package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of counters, gauges, and reservoirs
// with one consistency guarantee: Snapshot observes no counter-update
// group half-applied. Writers that must stay mutually consistent (a
// request's terminal transition incrementing exactly one of several
// outcome counters) wrap their updates in Update, which holds the
// registry's read lock; Snapshot takes the write lock and reads every
// instrument in a single pass, so a snapshot can never tear such a
// group — e.g. served + cancelled + errored never exceeds submitted in
// any snapshot, not just at quiescence.
//
// Independent monotone counters (submission-side increments) may skip
// Update and use the Counter directly; the atomic increment alone keeps
// "submitted" ahead of any grouped terminal transition that follows it.
//
// Gauge and reservoir callbacks run inside Snapshot under the registry
// lock: they must be lock-ordering leaves — reading atomics, or taking
// only locks never held around a call back into the registry.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]func() float64
	reservoirs map[string]func() *Reservoir
	histograms map[string]func() *Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]func() float64{},
		reservoirs: map[string]func() *Reservoir{},
		histograms: map[string]func() *Histogram{},
	}
}

// Counter returns the named counter, registering it on first use.
// Callers across packages (serving replicas sharing one registry) get
// the same counter for the same name.
func (g *Registry) Counter(name string) *Counter {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.counters[name]
	if c == nil {
		c = &Counter{}
		g.counters[name] = c
	}
	return c
}

// Gauge registers a point-in-time probe. fn is called inside Snapshot
// under the registry lock and must not call back into the registry.
// Registering a name again replaces the probe.
func (g *Registry) Gauge(name string, fn func() float64) {
	g.mu.Lock()
	g.gauges[name] = fn
	g.mu.Unlock()
}

// ReservoirFunc registers a sample provider. fn must return a snapshot
// the caller may keep (clone under the owner's lock) and, like a gauge,
// must not call back into the registry.
func (g *Registry) ReservoirFunc(name string, fn func() *Reservoir) {
	g.mu.Lock()
	g.reservoirs[name] = fn
	g.mu.Unlock()
}

// HistogramFunc registers a histogram provider. Like ReservoirFunc, fn
// must return a snapshot the caller may keep (Clone under the owner's
// lock) and must not call back into the registry. Returning nil reports
// an empty histogram.
func (g *Registry) HistogramFunc(name string, fn func() *Histogram) {
	g.mu.Lock()
	g.histograms[name] = fn
	g.mu.Unlock()
}

// Update runs fn under the registry's read lock. Counter writes inside
// fn form an atomic group with respect to Snapshot: a snapshot sees all
// of them or none. Concurrent Update groups proceed in parallel.
func (g *Registry) Update(fn func()) {
	g.mu.RLock()
	fn()
	g.mu.RUnlock()
}

// ReservoirStats summarises one reservoir at snapshot time.
type ReservoirStats struct {
	Seen int     `json:"seen"`
	Len  int     `json:"len"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P999 float64 `json:"p999"`
	Mean float64 `json:"mean"`
}

// Snapshot is one consistent reading of every registered instrument.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Reservoirs map[string]ReservoirStats `json:"reservoirs,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot reads every instrument in one pass under the write lock, so
// no Update group is observed half-applied and no two counters in the
// result disagree about which requests have retired.
func (g *Registry) Snapshot() Snapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := Snapshot{Counters: make(map[string]int64, len(g.counters))}
	for name, c := range g.counters {
		s.Counters[name] = c.Load()
	}
	if len(g.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(g.gauges))
		for name, fn := range g.gauges {
			s.Gauges[name] = fn()
		}
	}
	if len(g.reservoirs) > 0 {
		s.Reservoirs = make(map[string]ReservoirStats, len(g.reservoirs))
		for name, fn := range g.reservoirs {
			r := fn()
			if r == nil {
				s.Reservoirs[name] = ReservoirStats{}
				continue
			}
			v := r.Values()
			s.Reservoirs[name] = ReservoirStats{
				Seen: r.Seen(),
				Len:  r.Len(),
				P50:  Percentile(v, 50),
				P95:  Percentile(v, 95),
				P999: Percentile(v, 99.9),
				Mean: Mean(v),
			}
		}
	}
	if len(g.histograms) > 0 {
		s.Histograms = make(map[string]HistogramStats, len(g.histograms))
		for name, fn := range g.histograms {
			s.Histograms[name] = fn().Stats()
		}
	}
	return s
}

// Counter returns a counter value from the snapshot (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Histogram returns a histogram summary from the snapshot (zero when
// absent).
func (s Snapshot) Histogram(name string) HistogramStats { return s.Histograms[name] }

// Gauge returns a gauge value from the snapshot (0 when absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// JSON renders the snapshot deterministically (encoding/json sorts map
// keys), so fixed-seed runs export byte-identical snapshots.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", " ")
}

// String renders the snapshot as a sorted, aligned table.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-32s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-32s %.4g\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Reservoirs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := s.Reservoirs[n]
		fmt.Fprintf(&b, "%-32s p50=%.4g p95=%.4g p99.9=%.4g mean=%.4g n=%d\n",
			n, r.P50, r.P95, r.P999, r.Mean, r.Seen)
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%-32s p50=%d p95=%d p99.9=%d mean=%.4g n=%d\n",
			n, h.P50, h.P95, h.P999, h.Mean, h.N)
	}
	return b.String()
}
