package metrics

import "sync/atomic"

// Counter is a monotonic atomic event counter: a shared, concurrency-safe
// replacement for the ad-hoc atomic.Int64 fields that accumulated in the
// serving and cluster layers. The zero value is ready to use and the state
// is a single word, so embedding one per subsystem stays bounded no matter
// how long the process runs.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d (which may be negative for gauge-style use).
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.n.Load() }

// Reset zeroes the counter (atomically; safe against concurrent readers).
func (c *Counter) Reset() { c.n.Store(0) }

// Ratio is bounded hit/miss accounting over an unbounded event stream: two
// Counters and a derived rate, shared by the prefix cache (lookup hits),
// serving probes, and the n-gram drafter instead of each keeping its own
// mutex-guarded pair. The zero value is ready to use; all methods are safe
// for concurrent use.
type Ratio struct {
	hits  Counter
	total Counter
}

// Observe records one event and whether it hit.
func (r *Ratio) Observe(hit bool) {
	r.total.Inc()
	if hit {
		r.hits.Inc()
	}
}

// Hits returns the number of hit events.
func (r *Ratio) Hits() int64 { return r.hits.Load() }

// Total returns the number of observed events.
func (r *Ratio) Total() int64 { return r.total.Load() }

// Rate returns hits/total, 0 before the first observation.
func (r *Ratio) Rate() float64 {
	t := r.total.Load()
	if t == 0 {
		return 0
	}
	return float64(r.hits.Load()) / float64(t)
}

// Reset zeroes both counters. Unlike overwriting the struct, the stores
// are atomic, so a concurrent Rate reader sees zeros or old values, never
// a torn mix with undefined behaviour.
func (r *Ratio) Reset() {
	r.hits.Reset()
	r.total.Reset()
}
