module fastrl

go 1.24
