// Quickstart: build a TLT reasoning-RL system on one simulated H100 node,
// warm up the adaptive drafter, and run a few GRPO steps.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"fastrl/internal/core"
	"fastrl/internal/gpu"
	"fastrl/internal/model"
	"fastrl/internal/sched"
	"fastrl/internal/workload"
)

func main() {
	// DefaultConfig: TLT on 1 x 8xH100 node, Qwen-7B-like target, GRPO.
	cfg := core.DefaultConfig()
	cfg.RL.PromptsPerStep = 8
	cfg.RL.GroupSize = 4
	cfg.MaxNew = 256

	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The adaptive drafter starts from a brief warm-up on base-model
	// rollouts (the paper's OpenThoughts warm-up); spot training keeps it
	// aligned from then on, for free, on GPUs idled by the long tail.
	fmt.Println("warming up the adaptive drafter...")
	sys.WarmUpDrafter(40, 3)

	fmt.Println("running 5 GRPO steps with TLT (adaptive speculative decoding)...")
	for i := 0; i < 5; i++ {
		st, err := sys.Step()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("step %d: %v total (rollout %v) | %6.0f tok/s | reward %.3f | accept len %.2f | %d spot batches\n",
			st.Step, st.StepTime.Round(time.Millisecond), st.Rollout.Round(time.Millisecond),
			st.Throughput, st.Summary.MeanReward, st.AcceptLen, st.SpotBatches)
	}
	fmt.Println("\nthe drafter was trained opportunistically on idle GPUs during the")
	fmt.Println("long-tail phase of each rollout - no extra cost to the RL workflow.")
	fmt.Printf("final drafter version: %d (each version is one spot-training batch set)\n", sys.Eagle.Version)

	// Inspect the trained policy with the batched scoring API: one
	// ProbsBatch pass over several prompt contexts (engine-owned scratch,
	// no per-row allocation churn) emits rows bit-identical to sequential
	// Probs calls — the same entry the speculation engine verifies trees
	// through.
	tasks := sys.Tasks.SampleSeeded(4, 1)
	ctxs := make([]model.Context, len(tasks))
	rows := make([][]float32, len(tasks))
	vocab := sys.Tk.VocabSize()
	arena := make([]float32, len(tasks)*vocab)
	for i, task := range tasks {
		ctxs[i] = model.Context{Tokens: task.Prompt, PromptLen: len(task.Prompt)}
		rows[i] = arena[i*vocab : (i+1)*vocab]
	}
	sys.Target.ProbsBatch(ctxs, nil, 0.9, rows, model.NewScratch())
	fmt.Println("\nbatched next-token scoring at each prompt end (model.ProbsBatch):")
	for i, row := range rows {
		top := model.TopKInto(row, 1, nil)
		fmt.Printf("  prompt %d: argmax token %q (p=%.3f)\n",
			i, sys.Tk.Token(top[0]), row[top[0]])
	}

	// Continuous batching, hands on: the iteration-level scheduler is the
	// lifecycle under both the trainer and the serving replicas. Admit
	// requests as they "arrive", advance the whole batch one step at a
	// time, and retire completions at step boundaries — request 3 joins
	// while 0-2 are mid-decode, and nobody waits for a stranger to finish.
	fmt.Println("\ndriving the iteration-level scheduler directly (sched.Batch):")
	scfg := sched.DefaultConfig(gpu.NewDevice(gpu.H100, 1))
	scfg.SDThreshold = 0 // always speculate: the trained drafter is hot
	batch, err := sched.New(scfg, sys.Target, sys.Eagle)
	if err != nil {
		log.Fatal(err)
	}
	arrivals := sys.Tasks.SampleSeeded(4, 7)
	next, stepRng := 0, rand.New(rand.NewSource(11))
	for step := 0; batch.ActiveCount() > 0 || next < len(arrivals); step++ {
		if next < len(arrivals) && step%2 == 0 { // a new request every other step
			r := sched.NewRequest(next, arrivals[next].Prompt, 96,
				workload.LengthPrior{TargetLen: 64, Sharpness: 25},
				sys.Tk.Answer(), sys.Tk.Eos())
			r.RNG = rand.New(rand.NewSource(int64(next))) // private stream: batch-mates cannot perturb it
			batch.Admit(r)
			next++
		}
		batch.Step(stepRng)
		for _, r := range batch.Retire() {
			fmt.Printf("  request %d: %3d tokens in %v of virtual decode (accept len %.2f), retired at step %d\n",
				r.ID, r.Generated(), r.DecodeTime().Round(time.Microsecond), r.MeanAcceptLen(), step)
		}
	}

	fmt.Println("\nnext: `go run ./cmd/tltbench -exp all -quick` replays the paper figures;")
	fmt.Println("`-exp chaos` kills and revives shards mid-trace to show deterministic,")
	fmt.Println("exactly-once failover; ./examples/deploy_drafter serves the trained")
	fmt.Println("drafter through the sharded cluster, chaos drill included.")
}
