// Quickstart: build a TLT reasoning-RL system on one simulated H100 node,
// warm up the adaptive drafter, and run a few GRPO steps.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"fastrl/internal/core"
	"fastrl/internal/model"
)

func main() {
	// DefaultConfig: TLT on 1 x 8xH100 node, Qwen-7B-like target, GRPO.
	cfg := core.DefaultConfig()
	cfg.RL.PromptsPerStep = 8
	cfg.RL.GroupSize = 4
	cfg.MaxNew = 256

	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The adaptive drafter starts from a brief warm-up on base-model
	// rollouts (the paper's OpenThoughts warm-up); spot training keeps it
	// aligned from then on, for free, on GPUs idled by the long tail.
	fmt.Println("warming up the adaptive drafter...")
	sys.WarmUpDrafter(40, 3)

	fmt.Println("running 5 GRPO steps with TLT (adaptive speculative decoding)...")
	for i := 0; i < 5; i++ {
		st, err := sys.Step()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("step %d: %v total (rollout %v) | %6.0f tok/s | reward %.3f | accept len %.2f | %d spot batches\n",
			st.Step, st.StepTime.Round(time.Millisecond), st.Rollout.Round(time.Millisecond),
			st.Throughput, st.Summary.MeanReward, st.AcceptLen, st.SpotBatches)
	}
	fmt.Println("\nthe drafter was trained opportunistically on idle GPUs during the")
	fmt.Println("long-tail phase of each rollout - no extra cost to the RL workflow.")
	fmt.Printf("final drafter version: %d (each version is one spot-training batch set)\n", sys.Eagle.Version)

	// Inspect the trained policy with the batched scoring API: one
	// ProbsBatch pass over several prompt contexts (engine-owned scratch,
	// no per-row allocation churn) emits rows bit-identical to sequential
	// Probs calls — the same entry the speculation engine verifies trees
	// through.
	tasks := sys.Tasks.SampleSeeded(4, 1)
	ctxs := make([]model.Context, len(tasks))
	rows := make([][]float32, len(tasks))
	vocab := sys.Tk.VocabSize()
	arena := make([]float32, len(tasks)*vocab)
	for i, task := range tasks {
		ctxs[i] = model.Context{Tokens: task.Prompt, PromptLen: len(task.Prompt)}
		rows[i] = arena[i*vocab : (i+1)*vocab]
	}
	sys.Target.ProbsBatch(ctxs, nil, 0.9, rows, model.NewScratch())
	fmt.Println("\nbatched next-token scoring at each prompt end (model.ProbsBatch):")
	for i, row := range rows {
		top := model.TopKInto(row, 1, nil)
		fmt.Printf("  prompt %d: argmax token %q (p=%.3f)\n",
			i, sys.Tk.Token(top[0]), row[top[0]])
	}
}
