// Phase-breakdown view for exported request-lifecycle traces: aggregate
// every span in a Chrome trace_event file by kind and show where the
// requests' virtual time actually went — the trace-side complement of the
// scheduler's step-phase profile (`tltbench -exp batching` prints the
// per-Step decomposition; this renders the same story per request kind
// from the exported artefact).
package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"fastrl/internal/trace"
)

// phaseAgg accumulates one span kind's totals across the whole trace.
type phaseAgg struct {
	kind  string
	total int64 // summed span ns (0 for instant kinds)
	count int64
}

// renderPhaseBreakdown loads a Chrome trace_event file and prints the
// per-kind span aggregation: total time, share of summed span time, event
// count, and mean span length. Instant kinds (submit, retire, cancel)
// carry counts only.
func renderPhaseBreakdown(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	e, err := trace.ParseChrome(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	sum, err := e.Validate()
	if err != nil {
		return fmt.Errorf("%s failed validation: %w", path, err)
	}
	if len(e.Requests) == 0 {
		return fmt.Errorf("%s holds no request traces", path)
	}

	aggs := map[string]*phaseAgg{}
	var grand int64
	for _, r := range e.Requests {
		for _, sp := range r.Spans {
			a := aggs[sp.Kind]
			if a == nil {
				a = &phaseAgg{kind: sp.Kind}
				aggs[sp.Kind] = a
			}
			a.count++
			if d := sp.End - sp.Start; d > 0 {
				a.total += d
				grand += d
			}
		}
	}
	rows := make([]*phaseAgg, 0, len(aggs))
	for _, a := range aggs {
		rows = append(rows, a)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].kind < rows[j].kind
	})

	fmt.Fprintf(w, "trace %s: %d requests, %d spans, device busy %v\n", path, sum.Requests, sum.Spans, sum.Busy)
	fmt.Fprintf(w, "phase breakdown (per-request span time summed across the trace):\n\n")
	fmt.Fprintf(w, "%-12s %14s %7s %8s %14s\n", "phase", "total", "share", "events", "mean")
	for _, a := range rows {
		share := "-"
		mean := "-"
		if a.total > 0 {
			share = fmt.Sprintf("%5.1f%%", 100*float64(a.total)/float64(grand))
			mean = fmt.Sprint(time.Duration(a.total / a.count).Round(time.Microsecond))
		}
		fmt.Fprintf(w, "%-12s %14v %7s %8d %14s\n",
			a.kind, time.Duration(a.total).Round(time.Microsecond), share, a.count, mean)
	}
	fmt.Fprintf(w, "%-12s %14v %7s\n", "sum", time.Duration(grand).Round(time.Microsecond), "100.0%")
	fmt.Fprintln(w, "\n(queue time overlaps other requests' decode; the sum is request-attributed, not wall time)")
	return nil
}
