// ASCII Gantt rendering for exported request-lifecycle traces: feed the
// Chrome trace_event file written by `tltbench -trace` or the
// deploy_drafter example back in and get a per-request timeline on the
// terminal — the poor man's chrome://tracing.
package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"fastrl/internal/trace"
)

// ganttWidth is the timeline width in columns.
const ganttWidth = 96

// ganttMaxRows bounds the rendered request count; longer traces are
// truncated with a note (the Chrome file still has everything).
const ganttMaxRows = 48

// spanGlyph maps span kinds to timeline characters. Busy phases fill
// their interval; instants mark one cell.
var spanGlyph = map[string]byte{
	"queue":     '.',
	"prefill":   '#',
	"decode":    '=',
	"sd-round":  '=',
	"tool-wait": 'o',
	"submit":    '^',
	"cancel":    'x',
	"retire":    '|',
	"failover":  'F',
}

// renderTraceGantt loads a Chrome trace_event file and renders one row
// per request, grouped by shard, over a shared virtual-time axis.
func renderTraceGantt(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	e, err := trace.ParseChrome(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	sum, err := e.Validate()
	if err != nil {
		return fmt.Errorf("%s failed validation: %w", path, err)
	}
	if len(e.Requests) == 0 {
		return fmt.Errorf("%s holds no request traces", path)
	}

	// Shared axis across every request.
	t0, t1 := int64(1<<62), int64(0)
	for _, r := range e.Requests {
		for _, sp := range r.Spans {
			if sp.Start < t0 {
				t0 = sp.Start
			}
			if sp.End > t1 {
				t1 = sp.End
			}
		}
	}
	span := t1 - t0
	if span <= 0 {
		span = 1
	}
	col := func(ns int64) int {
		c := int((ns - t0) * ganttWidth / span)
		if c >= ganttWidth {
			c = ganttWidth - 1
		}
		return c
	}

	reqs := append([]trace.ExportRequest(nil), e.Requests...)
	sort.SliceStable(reqs, func(i, j int) bool {
		if reqs[i].Shard != reqs[j].Shard {
			return reqs[i].Shard < reqs[j].Shard
		}
		return firstStart(reqs[i]) < firstStart(reqs[j])
	})

	fmt.Fprintf(w, "trace %s: %d requests, %d spans, busy %v\n", path, sum.Requests, sum.Spans, sum.Busy)
	fmt.Fprintf(w, "axis: %v → %v (%v total); . queue  # prefill  = decode  o tool-wait  x cancel  | retire  F failover\n\n",
		time.Duration(t0), time.Duration(t1), time.Duration(span))
	shard := int32(-1)
	rows := 0
	for _, r := range reqs {
		if rows >= ganttMaxRows {
			fmt.Fprintf(w, "... %d more requests (truncated; open the file in chrome://tracing for the rest)\n",
				len(reqs)-rows)
			break
		}
		rows++
		if r.Shard != shard {
			shard = r.Shard
			fmt.Fprintf(w, "-- shard %d --\n", shard)
		}
		line := make([]byte, ganttWidth)
		for i := range line {
			line[i] = ' '
		}
		// Intervals first, instants on top so retire/cancel stay visible.
		for _, pass := range []bool{false, true} {
			for _, sp := range r.Spans {
				g, ok := spanGlyph[sp.Kind]
				if !ok {
					continue
				}
				instant := sp.End <= sp.Start
				if instant != pass {
					continue
				}
				if instant {
					line[col(sp.Start)] = g
					continue
				}
				for c := col(sp.Start); c <= col(sp.End-1); c++ {
					line[c] = g
				}
			}
		}
		fmt.Fprintf(w, "req %-5d |%s|\n", r.ReqID, line)
	}
	return nil
}

func firstStart(r trace.ExportRequest) int64 {
	if len(r.Spans) == 0 {
		return 0
	}
	return r.Spans[0].Start
}
