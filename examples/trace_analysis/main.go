// trace_analysis: reproduce the long-tail analysis of the paper's
// motivation (Figs. 1(a) and 2) from a synthesised production-style trace:
// per-step max/p75/median response lengths, the "under-utilised zone", and
// the implied GPU-hours wasted by the tail.
//
//	go run ./examples/trace_analysis
//
// With -trace it instead renders a request-lifecycle Gantt from a Chrome
// trace_event file exported by `tltbench -trace` or deploy_drafter, and
// with -phases a per-kind span-time aggregation of the same file:
//
//	go run ./examples/trace_analysis -trace deploy_drafter_trace.json
//	go run ./examples/trace_analysis -phases batching_trace.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"fastrl/internal/metrics"
	"fastrl/internal/workload"
)

func main() {
	traceFile := flag.String("trace", "", "render an ASCII Gantt from an exported Chrome trace_event file instead of the workload analysis")
	phaseFile := flag.String("phases", "", "print a per-kind span-time breakdown of an exported Chrome trace_event file instead of the workload analysis")
	flag.Parse()
	if *traceFile != "" {
		if err := renderTraceGantt(*traceFile, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *phaseFile != "" {
		if err := renderPhaseBreakdown(*phaseFile, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg := workload.DefaultTraceConfig()
	trace := workload.GenerateTrace(cfg)

	fmt.Printf("synthetic production trace: %d RL steps, %d responses/step, %d-token cap\n\n",
		cfg.Steps, cfg.PerStep, cfg.MaxLen)

	// Print every 35th step, the shape of paper Fig. 2.
	fmt.Printf("%-6s %-8s %-8s %-8s %-14s\n", "step", "median", "p75", "max", "p75->max gap")
	for i := 0; i < len(trace); i += 35 {
		t := trace[i]
		fmt.Printf("%-6d %-8d %-8d %-8d %-14.0f%%\n",
			t.Step, t.Median, t.P75, t.Max, 100*float64(t.Max-t.P75)/float64(t.Max))
	}

	frac := workload.UnderUtilizedFraction(trace)
	fmt.Printf("\nunder-utilised zone: %.0f%% of each rollout on average\n", 100*frac)
	fmt.Println("(time between 75% of responses finishing and the longest finishing,")
	fmt.Println(" during which most GPUs idle - exactly what TLT's spot trainer harvests)")

	// Fig 1(a)-style distribution snapshot from a single step's sampler.
	s := workload.LengthSampler{
		Median: 1800, Sigma: 0.75, TailProb: 0.06, TailAlpha: 1.05, MaxLen: cfg.MaxLen,
	}
	rngLens := s.SampleMany(4096, newRand(3))
	f := make([]float64, len(rngLens))
	capped := 0
	for i, l := range rngLens {
		f[i] = float64(l)
		if l == cfg.MaxLen {
			capped++
		}
	}
	fmt.Printf("\nsingle-step distribution (n=%d): p50=%.0f p75=%.0f p95=%.0f p99=%.0f max=%.0f\n",
		len(f), metrics.Percentile(f, 50), metrics.Percentile(f, 75),
		metrics.Percentile(f, 95), metrics.Percentile(f, 99), metrics.Max(f))
	fmt.Printf("%.1f%% of responses hit the %d-token cap - the persistent long tail\n",
		100*float64(capped)/float64(len(f)), cfg.MaxLen)
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
