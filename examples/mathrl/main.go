// mathrl: train a reasoning policy on arithmetic-chain tasks with GRPO
// under both the VeRL-style baseline and TLT, on identical workloads, and
// compare training throughput and reward trajectories — the paper's
// headline experiment (Figs. 11 and 12) at laptop scale.
//
//	go run ./examples/mathrl
package main

import (
	"fmt"
	"log"
	"time"

	"fastrl/internal/core"
	"fastrl/internal/gpu"
)

const steps = 8

func run(kind core.Kind) ([]core.StepStats, time.Duration) {
	cfg := core.DefaultConfig()
	cfg.Kind = kind
	cfg.Arch = gpu.Qwen7B
	cfg.Cluster = core.DefaultCluster(gpu.H100, 1, 2)
	cfg.Seed = 42
	cfg.RL.PromptsPerStep = 10
	cfg.RL.GroupSize = 6
	cfg.MaxNew = 256

	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if kind == core.TLT {
		sys.WarmUpDrafter(30, 2)
	}
	var out []core.StepStats
	var total time.Duration
	for i := 0; i < steps; i++ {
		st, err := sys.Step()
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, st)
		total += st.StepTime
	}
	return out, total
}

func main() {
	fmt.Println("training the same math-reasoning workload under VeRL and TLT...")
	verl, verlTime := run(core.VeRL)
	tlt, tltTime := run(core.TLT)

	fmt.Printf("\n%-5s | %-22s | %-22s\n", "step", "VeRL  (reward, time)", "TLT   (reward, time)")
	for i := 0; i < steps; i++ {
		fmt.Printf("%-5d | %6.3f  %12v | %6.3f  %12v\n",
			i+1,
			verl[i].Summary.MeanReward, verl[i].StepTime.Round(time.Millisecond),
			tlt[i].Summary.MeanReward, tlt[i].StepTime.Round(time.Millisecond))
	}
	fmt.Printf("\ntotal training time: VeRL %v, TLT %v -> %.2fx end-to-end speedup\n",
		verlTime.Round(time.Millisecond), tltTime.Round(time.Millisecond),
		verlTime.Seconds()/tltTime.Seconds())
	fmt.Println("reward trajectories track each other: speculative decoding is lossless,")
	fmt.Println("so TLT accelerates training without changing what is learned (paper Fig. 12).")
}
