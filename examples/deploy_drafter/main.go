// deploy_drafter: the "free byproduct" workflow (paper §7). RL training
// under TLT yields a drafter aligned with the final policy at no extra
// cost. This example trains briefly, checkpoints the drafter with the
// spot trainer's selective-async checkpointer, reloads it into a fresh
// process, and serves the frozen policy through the sharded cluster:
// per-shard radix prefix caches skip re-prefilling shared prompt
// prefixes, and cache-aware routing sends each request to the shard
// whose cache already covers it.
//
//	go run ./examples/deploy_drafter
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"fastrl/internal/cluster"
	"fastrl/internal/core"
	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/prefixcache"
	"fastrl/internal/rollout"
	"fastrl/internal/serving"
	"fastrl/internal/spot"
	"fastrl/internal/trace"
	"fastrl/internal/workload"
)

func main() {
	// ---- Phase 1: RL training with TLT (drafter adapts on idle GPUs).
	cfg := core.DefaultConfig()
	cfg.Seed = 7
	cfg.RL.PromptsPerStep = 8
	cfg.RL.GroupSize = 4
	cfg.MaxNew = 192
	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.WarmUpDrafter(40, 3)
	fmt.Println("phase 1: RL training (drafter adapts opportunistically)...")
	for i := 0; i < 4; i++ {
		if _, err := sys.Step(); err != nil {
			log.Fatal(err)
		}
	}

	// ---- Phase 2: checkpoint the byproduct drafter.
	dir, err := os.MkdirTemp("", "tlt-drafter")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ck := spot.NewCheckpointer(dir, spot.SelectiveAsync)
	d := gpu.DraftArch(cfg.Arch)
	trainable := int64(12 * d.HiddenDim * d.HiddenDim * 2)
	frozen := int64(2 * d.VocabSize * d.HiddenDim * 2)
	cs, err := ck.Save(sys.Eagle, trainable, frozen)
	if err != nil {
		log.Fatal(err)
	}
	if err := ck.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: drafter checkpointed to %s (%d KB trainable state, %v modelled blocking)\n",
		cs.Path, cs.SavedBytes/1024, cs.Blocking)

	// ---- Phase 3: deployment. A fresh drafter instance loads the
	// checkpoint and serves the (now frozen) policy through a sharded
	// cluster: every shard gets its own radix prefix cache, and the
	// cache-aware router sends each request to the shard whose cache
	// already covers the longest prefix of its prompt.
	served := draft.NewEagle(draft.EagleDefault(sys.Tk.VocabSize(), cfg.Arch))
	if _, err := spot.Load(cs.Path, served); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 3: serving through a cache-aware sharded cluster...")

	const shards = 2
	caches := cluster.NewShardCaches(shards, prefixcache.Config{})
	ecfg := rollout.DefaultConfig(gpu.NewDevice(gpu.H100, 2))
	ecfg.SDThreshold = 0 // SD always on: the deployed drafter earns its keep
	// Request-lifecycle tracing for the whole deployment: every request's
	// queue/prefill/SD-round spans land in per-request arenas (zero
	// steady-state allocations), stamped with the serving shard, and the
	// demo exports the lot as a Chrome trace at the end.
	tracer := trace.New(trace.Config{SpanSlots: 512, MaxRequests: 1 << 12})
	cl, err := cluster.New(cluster.Config{
		Tracer: tracer,
		Shards: shards,
		Shard: serving.Config{
			Engine: ecfg, Replicas: 1,
			// Each replica is a continuous-batching step-loop: up to 8
			// requests decode together, joining and leaving the batch at
			// iteration boundaries — a burst of submissions below shares
			// each verification pass instead of queueing head-of-line.
			MaxBatch: 8,
			AnswerID: sys.Tk.Answer(), EosID: sys.Tk.Eos(),
		},
		Policy: cluster.NewCacheAware(caches),
		Caches: caches,
		// A tight per-shard backlog makes admission control a live part of
		// the demo: shed requests come back as typed *ErrShedded with a
		// retry-after hint, and the submit helper below backs off and
		// retries instead of failing.
		Admission: cluster.AdmissionConfig{MaxPending: 6},
		// Failover keeps streams alive through the phase-4 shard kill:
		// requests stranded on the dead shard replay on the survivor,
		// bit-identical and exactly-once.
		Failover: cluster.FailoverConfig{Enabled: true},
	}, sys.Target, served)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	// Two passes over the same prompt set: the first pays full prefill
	// and seeds the caches, the second is routed back to the warm shards
	// and skips the prompt positions already resident. Every request goes
	// through the streaming path — the cluster's primary request surface —
	// so tokens arrive chunk by chunk as speculation rounds land, and
	// time-to-first-token is observable per request, not just end-to-end
	// latency.
	tasks := sys.Tasks.SampleSeeded(8, 99)
	for pass := 1; pass <= 2; pass++ {
		streams := make([]*cluster.Stream, 0, len(tasks))
		for i, task := range tasks {
			st, err := submitWithBackoff(cl, cluster.Request{
				Prompt: task.Prompt,
				MaxNew: 192,
				Prior:  workload.LengthPrior{TargetLen: 128, Sharpness: 25},
				Seed:   int64(pass*100 + i),
			})
			if err != nil {
				log.Fatal(err)
			}
			streams = append(streams, st)
		}
		var accept float64
		var n, chunks int
		for _, st := range streams {
			for {
				ev, err := st.Recv()
				if err == io.EOF {
					break
				}
				if err != nil {
					log.Fatal(err)
				}
				switch ev.Kind {
				case serving.EventTokens:
					// A consumer that keeps up sees one chunk per speculation
					// round's accepted run; this one drains lazily, so chunks
					// published since the last pull coalesce.
					chunks++
				case serving.EventUsage:
					if ev.Usage.Err != nil {
						log.Fatal(ev.Usage.Err)
					}
					if ev.Usage.AcceptLen > 0 {
						accept += ev.Usage.AcceptLen
						n++
					}
				}
			}
		}
		st := cl.Stats()
		fmt.Printf("  pass %d: served %d in %d chunks | accept len %.2f | p50 %v | ttft p50 %v | itl p50 %v | prefill positions saved so far %d\n",
			pass, st.Served, chunks, accept/float64(max(n, 1)), st.P50.Round(time.Microsecond),
			st.TTFTP50.Round(time.Microsecond), st.ITLP50.Round(time.Microsecond), st.CacheSavedPositions)
	}
	// One consistent registry snapshot replaces per-probe stat prints:
	// per-shard admission counters, outcome counters, cache gauges, and
	// the latency reservoirs, all read at a single point.
	fmt.Println("  unified registry snapshot:")
	for _, line := range strings.Split(strings.TrimRight(cl.Registry().Snapshot().String(), "\n"), "\n") {
		fmt.Println("    " + line)
	}
	if retries := sheddedRetries.Load(); retries > 0 {
		fmt.Printf("  admission shed %d submissions; all admitted after retry-after backoff\n", retries)
	}

	// ---- Phase 4: chaos drill. Kill shard 0 while a wave of streams is
	// in flight: failover resubmits the stranded requests to shard 1 and
	// replays them from their private RNG seeds, so every stream still
	// completes exactly once. Then revive shard 0 warm — prefix cache
	// re-seeded from the survivor's hottest prefixes — and confirm it
	// rejoins the serving set.
	fmt.Println("phase 4: chaos drill — killing shard 0 mid-flight...")
	drill := sys.Tasks.SampleSeeded(8, 123)
	streams := make([]*cluster.Stream, 0, len(drill))
	for i, task := range drill {
		st, err := submitWithBackoff(cl, cluster.Request{
			Prompt: task.Prompt,
			MaxNew: 192,
			Prior:  workload.LengthPrior{TargetLen: 128, Sharpness: 25},
			Seed:   int64(300 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		streams = append(streams, st)
	}
	cl.CrashShard(0, 0)
	for _, st := range streams {
		if _, err := st.Wait(); err != nil {
			log.Fatal(err)
		}
	}
	st := cl.Stats()
	fmt.Printf("  all %d streams completed | failovers %d | duplicate deliveries %d | postmortem captures %d\n",
		len(streams), st.Failovers, st.DuplicateDeliveries, len(cl.Postmortems()))
	if err := cl.ReviveShard(0, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  shard 0 revived warm: serving shards %v, cache resident %d KB\n",
		cl.Scaler().ServingShards(), caches[0].ResidentBytes()/1024)

	// Export the full demo — both passes, the shard kill, the failover
	// replays, and the warm revival — as a Chrome trace_event file:
	// load it in chrome://tracing or Perfetto for a per-shard Gantt
	// (pid = shard, tid = request), or feed it to
	// `go run ./examples/trace_analysis -trace <file>` for an ASCII one.
	export := tracer.Export()
	chrome, err := export.Chrome()
	if err != nil {
		log.Fatal(err)
	}
	tracePath := "deploy_drafter_trace.json"
	if err := os.WriteFile(tracePath, chrome, 0o644); err != nil {
		log.Fatal(err)
	}
	sum, err := export.Validate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wrote %s: %d requests, %d spans across the kill and revival\n",
		tracePath, sum.Requests, sum.Spans)

	fmt.Println("the drafter cost nothing to train, repeat prompts skip their prefill")
	fmt.Println("via the shared radix prefix cache, and a shard kill is absorbed by")
	fmt.Println("deterministic failover (paper's free byproduct, cached and durable)")
}

// sheddedRetries counts submissions that were shed and retried.
var sheddedRetries atomic.Int64

// submitWithBackoff submits a streaming request, honouring admission
// control's typed shed errors: a *cluster.ErrShedded carries the shard's
// retry-after estimate, which seeds a bounded exponential backoff (hint
// or current backoff, whichever is larger, capped at 50ms, at most 6
// retries). Anything else — including a nil error — returns immediately.
func submitWithBackoff(cl *cluster.Cluster, req cluster.Request) (*cluster.Stream, error) {
	backoff := time.Millisecond
	for attempt := 0; ; attempt++ {
		st, err := cl.Stream(context.Background(), req)
		var shed *cluster.ErrShedded
		if err == nil || !errors.As(err, &shed) || attempt >= 6 {
			return st, err
		}
		sheddedRetries.Add(1)
		wait := shed.RetryAfter
		if wait < backoff {
			wait = backoff
		}
		if wait > 50*time.Millisecond {
			wait = 50 * time.Millisecond
		}
		time.Sleep(wait)
		backoff *= 2
	}
}
