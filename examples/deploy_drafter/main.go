// deploy_drafter: the "free byproduct" workflow (paper §7). RL training
// under TLT yields a drafter aligned with the final policy at no extra
// cost. This example trains briefly, checkpoints the drafter with the
// spot trainer's selective-async checkpointer, reloads it into a fresh
// process, and serves the frozen policy with speculative decoding.
//
//	go run ./examples/deploy_drafter
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"fastrl/internal/core"
	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/rollout"
	"fastrl/internal/spot"
	"fastrl/internal/workload"
)

func main() {
	// ---- Phase 1: RL training with TLT (drafter adapts on idle GPUs).
	cfg := core.DefaultConfig()
	cfg.Seed = 7
	cfg.RL.PromptsPerStep = 8
	cfg.RL.GroupSize = 4
	cfg.MaxNew = 192
	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.WarmUpDrafter(40, 3)
	fmt.Println("phase 1: RL training (drafter adapts opportunistically)...")
	for i := 0; i < 4; i++ {
		if _, err := sys.Step(); err != nil {
			log.Fatal(err)
		}
	}

	// ---- Phase 2: checkpoint the byproduct drafter.
	dir, err := os.MkdirTemp("", "tlt-drafter")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ck := spot.NewCheckpointer(dir, spot.SelectiveAsync)
	d := gpu.DraftArch(cfg.Arch)
	trainable := int64(12 * d.HiddenDim * d.HiddenDim * 2)
	frozen := int64(2 * d.VocabSize * d.HiddenDim * 2)
	cs, err := ck.Save(sys.Eagle, trainable, frozen)
	if err != nil {
		log.Fatal(err)
	}
	if err := ck.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: drafter checkpointed to %s (%d KB trainable state, %v modelled blocking)\n",
		cs.Path, cs.SavedBytes/1024, cs.Blocking)

	// ---- Phase 3: deployment. A fresh drafter instance loads the
	// checkpoint and serves the (now frozen) policy with SD.
	served := draft.NewEagle(draft.EagleDefault(sys.Tk.VocabSize(), cfg.Arch))
	if _, err := spot.Load(cs.Path, served); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 3: serving the trained policy with the reloaded drafter...")

	serve := func(dr draft.Drafter, threshold int) rollout.Stats {
		dev := gpu.NewDevice(gpu.H100, 2)
		rcfg := rollout.DefaultConfig(dev)
		rcfg.SDThreshold = threshold
		eng, err := rollout.New(rcfg, sys.Target, dr)
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		sampler := workload.DefaultLengthSampler(256)
		var reqs []*rollout.Request
		for i, task := range sys.Tasks.Sample(8) {
			prior := workload.PriorFor(task, sampler, rng)
			reqs = append(reqs, rollout.NewRequest(i, task.Prompt, 256, prior, sys.Tk.Answer(), sys.Tk.Eos()))
		}
		return eng.Run(reqs, rng)
	}
	sd := serve(served, 32)
	van := serve(nil, -1)
	fmt.Printf("  with SD:    %6.0f tok/s (accept length %.2f)\n", sd.Throughput(), sd.MeanAcceptLen())
	fmt.Printf("  without SD: %6.0f tok/s\n", van.Throughput())
	fmt.Printf("  deployment speedup: %.2fx - the drafter cost nothing to train (paper's free byproduct)\n",
		sd.Throughput()/van.Throughput())
}
