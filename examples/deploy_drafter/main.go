// deploy_drafter: the "free byproduct" workflow (paper §7). RL training
// under TLT yields a drafter aligned with the final policy at no extra
// cost. This example trains briefly, checkpoints the drafter with the
// spot trainer's selective-async checkpointer, reloads it into a fresh
// process, and serves the frozen policy through the sharded cluster:
// per-shard radix prefix caches skip re-prefilling shared prompt
// prefixes, and cache-aware routing sends each request to the shard
// whose cache already covers it.
//
//	go run ./examples/deploy_drafter
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"fastrl/internal/cluster"
	"fastrl/internal/core"
	"fastrl/internal/draft"
	"fastrl/internal/gpu"
	"fastrl/internal/prefixcache"
	"fastrl/internal/rollout"
	"fastrl/internal/serving"
	"fastrl/internal/spot"
	"fastrl/internal/workload"
)

func main() {
	// ---- Phase 1: RL training with TLT (drafter adapts on idle GPUs).
	cfg := core.DefaultConfig()
	cfg.Seed = 7
	cfg.RL.PromptsPerStep = 8
	cfg.RL.GroupSize = 4
	cfg.MaxNew = 192
	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.WarmUpDrafter(40, 3)
	fmt.Println("phase 1: RL training (drafter adapts opportunistically)...")
	for i := 0; i < 4; i++ {
		if _, err := sys.Step(); err != nil {
			log.Fatal(err)
		}
	}

	// ---- Phase 2: checkpoint the byproduct drafter.
	dir, err := os.MkdirTemp("", "tlt-drafter")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ck := spot.NewCheckpointer(dir, spot.SelectiveAsync)
	d := gpu.DraftArch(cfg.Arch)
	trainable := int64(12 * d.HiddenDim * d.HiddenDim * 2)
	frozen := int64(2 * d.VocabSize * d.HiddenDim * 2)
	cs, err := ck.Save(sys.Eagle, trainable, frozen)
	if err != nil {
		log.Fatal(err)
	}
	if err := ck.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: drafter checkpointed to %s (%d KB trainable state, %v modelled blocking)\n",
		cs.Path, cs.SavedBytes/1024, cs.Blocking)

	// ---- Phase 3: deployment. A fresh drafter instance loads the
	// checkpoint and serves the (now frozen) policy through a sharded
	// cluster: every shard gets its own radix prefix cache, and the
	// cache-aware router sends each request to the shard whose cache
	// already covers the longest prefix of its prompt.
	served := draft.NewEagle(draft.EagleDefault(sys.Tk.VocabSize(), cfg.Arch))
	if _, err := spot.Load(cs.Path, served); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 3: serving through a cache-aware sharded cluster...")

	const shards = 2
	caches := cluster.NewShardCaches(shards, prefixcache.Config{})
	ecfg := rollout.DefaultConfig(gpu.NewDevice(gpu.H100, 2))
	ecfg.SDThreshold = 0 // SD always on: the deployed drafter earns its keep
	cl, err := cluster.New(cluster.Config{
		Shards: shards,
		Shard: serving.Config{
			Engine: ecfg, Replicas: 1,
			// Each replica is a continuous-batching step-loop: up to 8
			// requests decode together, joining and leaving the batch at
			// iteration boundaries — a burst of submissions below shares
			// each verification pass instead of queueing head-of-line.
			MaxBatch: 8,
			AnswerID: sys.Tk.Answer(), EosID: sys.Tk.Eos(),
		},
		Policy: cluster.NewCacheAware(caches),
		Caches: caches,
	}, sys.Target, served)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	// Two passes over the same prompt set: the first pays full prefill
	// and seeds the caches, the second is routed back to the warm shards
	// and skips the prompt positions already resident. Every request goes
	// through the streaming path — the cluster's primary request surface —
	// so tokens arrive chunk by chunk as speculation rounds land, and
	// time-to-first-token is observable per request, not just end-to-end
	// latency.
	tasks := sys.Tasks.SampleSeeded(8, 99)
	for pass := 1; pass <= 2; pass++ {
		streams := make([]*cluster.Stream, 0, len(tasks))
		for i, task := range tasks {
			st, err := cl.Stream(context.Background(), cluster.Request{
				Prompt: task.Prompt,
				MaxNew: 192,
				Prior:  workload.LengthPrior{TargetLen: 128, Sharpness: 25},
				Seed:   int64(pass*100 + i),
			})
			if err != nil {
				log.Fatal(err)
			}
			streams = append(streams, st)
		}
		var accept float64
		var n, chunks int
		for _, st := range streams {
			for {
				ev, err := st.Recv()
				if err == io.EOF {
					break
				}
				if err != nil {
					log.Fatal(err)
				}
				switch ev.Kind {
				case serving.EventTokens:
					// A consumer that keeps up sees one chunk per speculation
					// round's accepted run; this one drains lazily, so chunks
					// published since the last pull coalesce.
					chunks++
				case serving.EventUsage:
					if ev.Usage.Err != nil {
						log.Fatal(ev.Usage.Err)
					}
					if ev.Usage.AcceptLen > 0 {
						accept += ev.Usage.AcceptLen
						n++
					}
				}
			}
		}
		st := cl.Stats()
		fmt.Printf("  pass %d: served %d in %d chunks | accept len %.2f | p50 %v | ttft p50 %v | itl p50 %v | prefill positions saved so far %d\n",
			pass, st.Served, chunks, accept/float64(max(n, 1)), st.P50.Round(time.Microsecond),
			st.TTFTP50.Round(time.Microsecond), st.ITLP50.Round(time.Microsecond), st.CacheSavedPositions)
	}
	for _, ss := range cl.Stats().Shards {
		fmt.Printf("  shard %d: served %d, cache hit rate %.0f%%, resident %d KB\n",
			ss.ID, ss.Served, 100*ss.CacheHitRate, ss.CacheBytes/1024)
	}
	fmt.Println("the drafter cost nothing to train, and repeat prompts skip their")
	fmt.Println("prefill via the shared radix prefix cache (paper's free byproduct, cached)")
}
